"""Resumable on-disk campaign store: durable fault records + manifest.

A campaign store makes the faulty phase of a campaign durable and
resumable.  One store directory holds one campaign:

* ``manifest.json`` -- the campaign's identity (workload, level,
  structure and every result-affecting
  :meth:`~repro.injection.campaign.CampaignConfig.identity` knob), the
  record format, the repository's ``git describe`` at creation time,
  and -- once the golden phase has run -- the golden summary that lets
  a fully completed campaign resume without simulating anything at all;
* the fault records, in one of two formats:

  - **format 2 (binary, the default for fresh stores)** --
    ``records.bin`` holds fixed-width bitpacked records
    (:data:`~repro.injection.storefmt.RECORD_BYTES` bytes each),
    ``strings.dat`` interns structure/detail strings, and ``trace.bin``
    (optional) carries the run-length-encoded golden lifetime trace.
    Reads are mmap-backed numpy lane views, so tallies and diffs over
    10^6 faults never materialize per-record Python objects;
  - **format 1 (JSONL)** -- ``records.jsonl``, one JSON object per
    fault.  Kept as a human-greppable debug format
    (``repro-study store <dir> --export jsonl`` converts either way).

Both formats are append-only and flushed per record, so a killed
campaign loses at most the fault that was in flight.

Quarantined faults -- sampled faults that spent their retry budget
killing, stalling or crashing their runs (:class:`~repro.injection
.classify.Incident`, ``disposition="error"``) -- persist in an
``incidents.jsonl`` sidecar next to the records file, whatever the
record format.  Keeping them out of ``records.bin`` keeps the
fixed-width format 2 layout untouched (an incident has no class, no
cycle counts -- packing it would poison every columnar lane read) while
staying human-greppable at the moment a human most wants to grep.  On
resume, incident indices count as *done*: a poison fault is never
re-run, so resuming a degraded campaign is a no-op.

Resume semantics: fault samples are a pure function of the manifest
identity (same seed, same distribution), so a resumed campaign redraws
the identical sample list, skips every index already on disk and runs
only the remainder.  Records from both sessions merge by index into a
sequence whose classifications (class, detail, sim_cycles) are
bit-identical to an uninterrupted run; only per-session accounting
(``wall_seconds`` -- microsecond-quantized in format 2 --  and
``replay_cycles``) reflects how each session actually executed.  A
half-written trailing record (the in-flight fault of a kill) is
truncated away on open; any earlier corruption, a duplicated fault
index, or an identity mismatch is an error, never a silent partial
resume.  A records file without a manifest (a crash in the window
between store creation and the manifest write, or a hand-deleted
manifest) is *refused* on a fresh start rather than wiped.
"""

import json
import os
import pathlib
import subprocess
import time

import numpy as np

from repro.injection import storefmt
from repro.injection.classify import FaultClass, FaultRecord, Incident
from repro.injection.faults import FaultSpec
from repro.injection.storefmt import StoreError, StoreMismatchError

#: Manifest formats this code reads, and the default for fresh stores.
FORMAT_JSONL = 1
FORMAT_BINARY = 2
FORMATS = (FORMAT_JSONL, FORMAT_BINARY)
FORMAT = FORMAT_BINARY

MANIFEST_NAME = "manifest.json"
RECORDS_NAME = "records.jsonl"
BINARY_RECORDS_NAME = "records.bin"
STRINGS_NAME = "strings.dat"
TRACE_NAME = "trace.bin"
#: Quarantined-fault sidecar (JSONL in both record formats).
INCIDENTS_NAME = "incidents.jsonl"

_FORMAT_NAMES = {"jsonl": FORMAT_JSONL, "binary": FORMAT_BINARY}


def normalize_format(store_format):
    """A user-facing format name/number as a format code (or None)."""
    if store_format is None or store_format in FORMATS:
        return store_format
    try:
        return _FORMAT_NAMES[store_format]
    except (KeyError, TypeError):
        raise StoreError(
            f"unknown store format {store_format!r} "
            f"(choose 'binary' or 'jsonl')")


def format_name(fmt):
    return {FORMAT_JSONL: "jsonl", FORMAT_BINARY: "binary"}.get(
        fmt, str(fmt))


def git_describe():
    """``git describe`` of the enclosing repo, or None outside one.

    Purely informational provenance -- a mismatch never blocks resume
    (the result-affecting identity is recorded explicitly).
    """
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=pathlib.Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def record_to_json(index, record):
    """One :class:`FaultRecord` as a JSONL-ready dict."""
    return {
        "i": index,
        "structure": record.fault.structure,
        "bit": record.fault.bit,
        "cycle": record.fault.cycle,
        "original_cycle": record.fault.original_cycle,
        "fclass": record.fclass.value,
        "detail": record.detail,
        "sim_cycles": record.sim_cycles,
        "wall_seconds": record.wall_seconds,
        "replay_cycles": record.replay_cycles,
        "pruned": record.pruned,
    }


def record_from_json(blob):
    """Inverse of :func:`record_to_json`; returns ``(index, record)``."""
    fault = FaultSpec(blob["structure"], blob["bit"], blob["cycle"],
                      original_cycle=blob["original_cycle"])
    record = FaultRecord(
        fault, FaultClass(blob["fclass"]), blob["detail"],
        sim_cycles=blob["sim_cycles"],
        wall_seconds=blob["wall_seconds"],
        replay_cycles=blob.get("replay_cycles", 0),
        pruned=blob.get("pruned", ""),
    )
    return blob["i"], record


def incident_to_json(incident):
    """One :class:`Incident` as a JSONL-ready dict."""
    return {
        "i": incident.index,
        "disposition": incident.disposition,
        "structure": incident.fault.structure,
        "bit": incident.fault.bit,
        "cycle": incident.fault.cycle,
        "original_cycle": incident.fault.original_cycle,
        "kind": incident.kind,
        "detail": incident.detail,
        "attempts": incident.attempts,
    }


def incident_from_json(blob):
    """Inverse of :func:`incident_to_json`; returns ``(index, incident)``."""
    fault = FaultSpec(blob["structure"], blob["bit"], blob["cycle"],
                      original_cycle=blob["original_cycle"])
    incident = Incident(blob["i"], fault, blob["kind"],
                        detail=blob.get("detail", ""),
                        attempts=blob.get("attempts", 1))
    return blob["i"], incident


class CampaignStore:
    """One campaign's on-disk record set.

    Lifecycle: construct with a directory path, then :meth:`begin` with
    the campaign identity (creates or validates), :meth:`append` per
    completed fault, :meth:`set_golden` after the golden phase.  A
    store can also be read standalone (reports, merging, tallies)
    through :meth:`manifest`/:meth:`records`/:meth:`class_tally`
    without :meth:`begin`.

    ``store_format`` picks the record format for *fresh* stores
    (``"binary"``/``"jsonl"``, default binary); an existing store keeps
    the format its manifest declares, and an explicit conflicting
    request is an error rather than a silent rewrite.
    """

    def __init__(self, path, store_format=None):
        self.path = pathlib.Path(path)
        self._requested_format = normalize_format(store_format)
        self._format = None
        self._records_file = None
        self._strings = None
        self._incidents_file = None

    @property
    def manifest_path(self):
        return self.path / MANIFEST_NAME

    @property
    def records_path(self):
        return self.path / RECORDS_NAME

    @property
    def binary_path(self):
        return self.path / BINARY_RECORDS_NAME

    @property
    def strings_path(self):
        return self.path / STRINGS_NAME

    @property
    def trace_path(self):
        return self.path / TRACE_NAME

    @property
    def incidents_path(self):
        return self.path / INCIDENTS_NAME

    def exists(self):
        return self.manifest_path.exists()

    def format(self):
        """The store's resolved record format code.

        The manifest's format when one exists, else whichever records
        file is on disk, else the requested (or default) format for a
        fresh store.  An explicit request that conflicts with an
        existing store raises :class:`StoreError`.
        """
        if self.exists():
            fmt = self.manifest()["format"]
        elif self.binary_path.exists():
            fmt = FORMAT_BINARY
        elif self.records_path.exists():
            fmt = FORMAT_JSONL
        else:
            return self._requested_format or FORMAT
        if self._requested_format not in (None, fmt):
            raise StoreError(
                f"store at {self.path} is "
                f"{format_name(fmt)} (format {fmt}) but "
                f"{format_name(self._requested_format)} was requested; "
                f"delete the directory to rewrite it")
        return fmt

    def _read_format(self):
        # For read-only paths: never enforces the requested format.
        if self.exists():
            return self.manifest()["format"]
        if self.binary_path.exists():
            return FORMAT_BINARY
        return FORMAT_JSONL

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def begin(self, identity, resume=False):
        """Open the store for a campaign with ``identity``.

        Fresh start (``resume=False``): allowed only when the store is
        absent or still empty -- an existing store with completed
        records is hours of simulation, so overwriting it without
        ``resume`` raises :class:`StoreError` instead of silently
        discarding them (delete the directory to really start over).
        That refusal also covers orphaned records files whose manifest
        is missing.  Resume: the stored identity must match exactly
        (:class:`StoreMismatchError` otherwise) and a torn trailing
        record -- the footprint of a kill mid-write -- is truncated
        away.  Returns the records already on disk,
        ``{index: FaultRecord}``.
        """
        self.path.mkdir(parents=True, exist_ok=True)
        stored = {}
        if resume and self.exists():
            fmt = self.format()
            manifest = self.manifest()
            if manifest.get("identity") != identity:
                raise StoreMismatchError(
                    f"store at {self.path} was written by a different "
                    f"campaign:\n  stored:  {manifest.get('identity')}"
                    f"\n  current: {identity}"
                )
            self._recover_records_tail(fmt)
            stored = self.records()
        else:
            if self.exists():
                existing = self.records()
                if existing:
                    raise StoreError(
                        f"store at {self.path} already holds "
                        f"{len(existing)} completed records; pass "
                        f"resume (--resume) to continue it, or delete "
                        f"the directory to start over"
                    )
            else:
                self._refuse_orphan_records()
            fmt = self._requested_format or FORMAT
            self._write_manifest({
                "format": fmt,
                "identity": identity,
                "git": git_describe(),
                "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            })
            self._init_records(fmt)
        self._format = fmt
        if fmt == FORMAT_BINARY:
            self._strings = storefmt.StringTable(self.strings_path)
            self._records_file = open(self.binary_path, "ab")
        else:
            self._records_file = open(self.records_path, "a",
                                      encoding="utf-8")
        return stored

    def _refuse_orphan_records(self):
        # Satellite of the durability contract: a records file without
        # a manifest is evidence of a crash (or a hand-deleted
        # manifest), not a blank slate -- never wipe it.
        for path, empty_size in (
                (self.records_path, 0),
                (self.incidents_path, 0),
                (self.binary_path, storefmt.RECORDS_HEADER_BYTES)):
            try:
                size = os.path.getsize(path)
            except OSError:
                continue
            if size > empty_size:
                raise StoreError(
                    f"{path} holds completed records but "
                    f"{self.manifest_path} is missing; refusing to "
                    f"overwrite them -- restore the manifest or delete "
                    f"the store directory to start over")

    def _init_records(self, fmt):
        for stale in (self.records_path, self.binary_path,
                      self.strings_path, self.trace_path,
                      self.incidents_path):
            stale.unlink(missing_ok=True)
        if fmt == FORMAT_BINARY:
            self.binary_path.write_bytes(storefmt.records_header())
        else:
            self.records_path.write_text("")

    def close(self):
        if self._records_file is not None:
            self._records_file.close()
            self._records_file = None
        if self._strings is not None:
            self._strings.close()
            self._strings = None
        if self._incidents_file is not None:
            self._incidents_file.close()
            self._incidents_file = None

    # ------------------------------------------------------------------
    # manifest
    # ------------------------------------------------------------------

    def manifest(self):
        try:
            manifest = json.loads(self.manifest_path.read_text())
        except FileNotFoundError:
            raise StoreError(f"no campaign store at {self.path}")
        except json.JSONDecodeError as exc:
            raise StoreError(
                f"corrupt manifest at {self.manifest_path}: {exc}"
            )
        if manifest.get("format") not in FORMATS:
            raise StoreError(
                f"store at {self.path} has format "
                f"{manifest.get('format')!r}, this code reads formats "
                f"{list(FORMATS)} -- re-run the campaign to rewrite it"
            )
        return manifest

    def _write_manifest(self, manifest):
        # Atomic rewrite: a crash mid-write must not tear the manifest.
        tmp = self.manifest_path.with_suffix(".tmp")
        tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True)
                       + "\n")
        os.replace(tmp, self.manifest_path)

    def set_golden(self, golden_cycles, golden_insts, end_cycle,
                   population, bits, trace=None):
        """Record the golden summary so a fully completed campaign can
        later resume into a result -- and redraw its fault samples for
        cross-checking -- without simulating.

        For binary stores, a golden lifetime ``trace`` is also
        persisted (RLE-encoded, atomically) so prune decisions survive
        alongside the records they explain.
        """
        manifest = self.manifest()
        manifest["golden"] = {
            "cycles": golden_cycles,
            "insts": golden_insts,
            "end_cycle": end_cycle,
            "population": population,
            "bits": bits,
        }
        self._write_manifest(manifest)
        if trace is not None and manifest["format"] == FORMAT_BINARY:
            tmp = self.trace_path.with_suffix(".tmp")
            tmp.write_bytes(storefmt.encode_trace(trace.snapshot()))
            os.replace(tmp, self.trace_path)

    def golden_info(self):
        """The recorded golden summary, or None before the golden phase."""
        return self.manifest().get("golden")

    def golden_trace(self):
        """The persisted golden lifetime trace, or None if absent."""
        try:
            blob = self.trace_path.read_bytes()
        except FileNotFoundError:
            return None
        from repro.prune.trace import LifetimeTrace
        trace = LifetimeTrace()
        trace.restore(storefmt.decode_trace(blob))
        return trace

    # ------------------------------------------------------------------
    # records
    # ------------------------------------------------------------------

    def append(self, index, record):
        """Durably append one completed fault (flushed per record)."""
        if self._records_file is None:
            raise StoreError("store not opened with begin()")
        if self._format == FORMAT_BINARY:
            # Interning flushes new strings before the record that
            # references them hits the file, so an intact record never
            # dangles (an orphan string after a kill is harmless).
            sid = self._strings.intern(storefmt.KIND_STRUCTURE,
                                       record.fault.structure)
            did = self._strings.intern(storefmt.KIND_DETAIL,
                                       record.detail)
            self._records_file.write(
                storefmt.pack_record(index, record, sid, did))
        else:
            self._records_file.write(
                json.dumps(record_to_json(index, record)) + "\n"
            )
        self._records_file.flush()

    def records(self):
        """All intact records on disk, ``{index: FaultRecord}``.

        A torn final record (kill mid-append) is ignored; corruption
        anywhere earlier, or a duplicated fault index (double-append),
        raises :class:`StoreError`.
        """
        if self._read_format() == FORMAT_BINARY:
            return self._binary_records()
        return self._jsonl_records()

    def _jsonl_records(self):
        out = {}
        try:
            lines = self.records_path.read_text().split("\n")
        except FileNotFoundError:
            return out
        # split() leaves a trailing "" for a newline-terminated file;
        # anything non-empty after the last newline is a torn record.
        for lineno, line in enumerate(lines):
            if not line:
                continue
            try:
                index, record = record_from_json(json.loads(line))
            except (json.JSONDecodeError, KeyError, ValueError) as exc:
                if lineno == len(lines) - 1:
                    continue  # torn tail: the in-flight fault of a kill
                raise StoreError(
                    f"corrupt record at {self.records_path}:"
                    f"{lineno + 1}: {exc}"
                )
            if index in out:
                raise StoreError(
                    f"duplicate fault index #{index} at "
                    f"{self.records_path}:{lineno + 1}: the store was "
                    f"double-appended; delete it and re-run")
            out[index] = record
        return out

    def _reader(self):
        return storefmt.PackedReader(self.binary_path,
                                     self.strings_path)

    def _binary_records(self):
        reader = self._reader()
        reader.check_duplicates()
        out = {}
        if not len(reader):
            return out
        index = reader.lane("index").tolist()
        structure = reader.structure_names().tolist()
        detail = reader.detail_names().tolist()
        fclass = [storefmt.FCLASS_BY_CODE[c]
                  for c in reader.fclass_codes().tolist()]
        pruned = [storefmt.PRUNED_BY_CODE[c]
                  for c in reader.pruned_tags().tolist()]
        bit = reader.lane("bit").tolist()
        cycle = reader.lane("cycle").tolist()
        original = reader.lane("original_cycle").tolist()
        sim = reader.lane("sim_cycles").tolist()
        replay = reader.lane("replay_cycles").tolist()
        wall = reader.lane("wall_us").tolist()
        for k in range(len(index)):
            fault = FaultSpec(structure[k], bit[k], cycle[k],
                              original_cycle=original[k])
            out[index[k]] = FaultRecord(
                fault, fclass[k], detail[k], sim_cycles=sim[k],
                wall_seconds=wall[k] / 1e6,
                replay_cycles=replay[k], pruned=pruned[k])
        return out

    def append_incident(self, incident):
        """Durably append one quarantined fault to the sidecar.

        Lazily creates ``incidents.jsonl`` on the first incident, so a
        clean campaign's store has no sidecar at all -- the file's very
        existence means "this campaign degraded at least once".
        Flushed per incident, same durability as :meth:`append`.
        """
        if self._records_file is None:
            raise StoreError("store not opened with begin()")
        if self._incidents_file is None:
            self._incidents_file = open(self.incidents_path, "a",
                                        encoding="utf-8")
        self._incidents_file.write(
            json.dumps(incident_to_json(incident)) + "\n")
        self._incidents_file.flush()

    def incidents(self):
        """All intact quarantined faults, ``{index: Incident}``.

        Same tail contract as :meth:`records`: a torn final line (kill
        mid-append) is ignored, earlier corruption or a duplicated
        index raises :class:`StoreError`.  An absent sidecar is simply
        an incident-free campaign.
        """
        out = {}
        try:
            lines = self.incidents_path.read_text().split("\n")
        except FileNotFoundError:
            return out
        for lineno, line in enumerate(lines):
            if not line:
                continue
            try:
                index, incident = incident_from_json(json.loads(line))
            except (json.JSONDecodeError, KeyError, ValueError) as exc:
                if lineno == len(lines) - 1:
                    continue  # torn tail: the in-flight quarantine
                raise StoreError(
                    f"corrupt incident at {self.incidents_path}:"
                    f"{lineno + 1}: {exc}"
                )
            if index in out:
                raise StoreError(
                    f"duplicate fault index #{index} at "
                    f"{self.incidents_path}:{lineno + 1}: the sidecar "
                    f"was double-appended; delete the store and re-run")
            out[index] = incident
        return out

    def incident_count(self):
        """How many faults this campaign quarantined (0 = clean)."""
        return len(self.incidents())

    def class_tally(self):
        """Per-class record counts without materializing records.

        Returns ``{"n", "unsafe", "pruned", "classes": {value: count}}``.
        Format 2 tallies numpy lanes straight off the mmap; format 1
        falls back to parsing records.
        """
        if self._read_format() == FORMAT_BINARY:
            reader = self._reader()
            reader.check_duplicates()
            return reader.class_tally()
        records = self.records()
        classes = {f.value: 0 for f in storefmt.FCLASS_BY_CODE}
        for record in records.values():
            classes[record.fclass.value] += 1
        return {
            "n": len(records),
            "unsafe": sum(1 for r in records.values()
                          if r.fclass is not FaultClass.MASKED),
            "pruned": sum(1 for r in records.values() if r.pruned),
            "classes": classes,
        }

    def sequence_arrays(self):
        """The classification sequence as columnar numpy arrays.

        ``{"index", "structure", "bit", "original_cycle", "fclass"}``
        sorted by fault index -- the exact identity
        ``tools/diff_store_classes.py`` compares.  Format 2 reads lanes
        off the mmap (no per-record objects); format 1 falls back to
        parsed records.
        """
        if self._read_format() == FORMAT_BINARY:
            reader = self._reader()
            reader.check_duplicates()
            order = np.argsort(reader.lane("index"), kind="stable")
            return {
                "index": reader.lane("index")[order],
                "structure": reader.structure_names()[order],
                "bit": reader.lane("bit")[order],
                "original_cycle":
                    reader.lane("original_cycle")[order],
                "fclass": reader.fclass_values()[order],
            }
        records = self.records()
        idx = sorted(records)
        return {
            "index": np.asarray(idx, dtype=np.uint64),
            "structure": np.asarray(
                [records[i].fault.structure for i in idx],
                dtype=object),
            "bit": np.asarray(
                [records[i].fault.bit for i in idx],
                dtype=np.uint64),
            "original_cycle": np.asarray(
                [records[i].fault.original_cycle for i in idx],
                dtype=np.uint64),
            "fclass": np.asarray(
                [records[i].fclass.value for i in idx], dtype=object),
        }

    def export_jsonl(self):
        """Yield the store's records as JSONL lines, in index order.

        The debug export: re-importing the lines with
        :func:`record_from_json` reproduces the stored records exactly
        (for binary stores, ``wall_seconds`` carries the store's
        microsecond quantization).
        """
        records = self.records()
        for index in sorted(records):
            yield json.dumps(record_to_json(index, records[index]))

    def _recover_records_tail(self, fmt=None):
        """Truncate a half-written final record in place."""
        if fmt is None:
            fmt = self._read_format()
        self._recover_jsonl_tail(self.incidents_path, create=False)
        if fmt == FORMAT_BINARY:
            storefmt.recover_records_tail(self.binary_path)
            storefmt.recover_strings_tail(self.strings_path)
            return
        self._recover_jsonl_tail(self.records_path, create=True)

    @staticmethod
    def _recover_jsonl_tail(path, create):
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            if create:
                path.write_text("")
            return
        if blob and not blob.endswith(b"\n"):
            keep = blob.rfind(b"\n") + 1
            path.write_bytes(blob[:keep])

    def __repr__(self):
        return f"CampaignStore({str(self.path)!r})"


def load_store(path):
    """Read one store: ``(manifest, {index: FaultRecord})``."""
    store = CampaignStore(path)
    return store.manifest(), store.records()


def load_stores(paths):
    """Read and merge several stores for reporting.

    Returns a list of ``(manifest, records)`` pairs, one per store, in
    the given order.  Stores are independent campaigns (different
    workloads/levels/structures), so merging means collecting, not
    concatenating records.
    """
    return [load_store(path) for path in paths]
