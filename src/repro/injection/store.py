"""Resumable on-disk campaign store: append-only JSONL + manifest.

A campaign store makes the faulty phase of a campaign durable and
resumable.  One store directory holds one campaign:

* ``manifest.json`` -- the campaign's identity (workload, level,
  structure and every result-affecting
  :meth:`~repro.injection.campaign.CampaignConfig.identity` knob), the
  repository's ``git describe`` at creation time, and -- once the
  golden phase has run -- the golden summary that lets a fully
  completed campaign resume without simulating anything at all;
* ``records.jsonl`` -- one JSON object per completed fault, keyed by
  the fault's sample index.  Append-only and flushed per record, so a
  killed campaign loses at most the fault that was in flight.

Resume semantics: fault samples are a pure function of the manifest
identity (same seed, same distribution), so a resumed campaign redraws
the identical sample list, skips every index already on disk and runs
only the remainder.  Records from both sessions merge by index into a
sequence whose classifications (class, detail, sim_cycles) are
bit-identical to an uninterrupted run; only per-session accounting
(``wall_seconds``, ``replay_cycles``) reflects how each session
actually executed.  A half-written trailing
line (the in-flight fault of a kill) is truncated away on open; any
earlier corruption or an identity mismatch is an error, never a silent
partial resume.
"""

import json
import os
import pathlib
import subprocess
import time

from repro.injection.classify import FaultClass, FaultRecord
from repro.injection.faults import FaultSpec

#: Manifest format; bump on incompatible layout changes.
FORMAT = 1

MANIFEST_NAME = "manifest.json"
RECORDS_NAME = "records.jsonl"


class StoreError(Exception):
    """A campaign store is unreadable or corrupt beyond recovery."""


class StoreMismatchError(StoreError):
    """Resume rejected: the store was written by a different campaign."""


def git_describe():
    """``git describe`` of the enclosing repo, or None outside one.

    Purely informational provenance -- a mismatch never blocks resume
    (the result-affecting identity is recorded explicitly).
    """
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=pathlib.Path(__file__).resolve().parent,
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def record_to_json(index, record):
    """One :class:`FaultRecord` as a JSONL-ready dict."""
    return {
        "i": index,
        "structure": record.fault.structure,
        "bit": record.fault.bit,
        "cycle": record.fault.cycle,
        "original_cycle": record.fault.original_cycle,
        "fclass": record.fclass.value,
        "detail": record.detail,
        "sim_cycles": record.sim_cycles,
        "wall_seconds": record.wall_seconds,
        "replay_cycles": record.replay_cycles,
        "pruned": record.pruned,
    }


def record_from_json(blob):
    """Inverse of :func:`record_to_json`; returns ``(index, record)``."""
    fault = FaultSpec(blob["structure"], blob["bit"], blob["cycle"],
                      original_cycle=blob["original_cycle"])
    record = FaultRecord(
        fault, FaultClass(blob["fclass"]), blob["detail"],
        sim_cycles=blob["sim_cycles"],
        wall_seconds=blob["wall_seconds"],
        replay_cycles=blob.get("replay_cycles", 0),
        pruned=blob.get("pruned", ""),
    )
    return blob["i"], record


class CampaignStore:
    """One campaign's on-disk record set.

    Lifecycle: construct with a directory path, then :meth:`begin` with
    the campaign identity (creates or validates), :meth:`append` per
    completed fault, :meth:`set_golden` after the golden phase.  A
    store can also be read standalone (reports, merging) through
    :meth:`manifest`/:meth:`records` without :meth:`begin`.
    """

    def __init__(self, path):
        self.path = pathlib.Path(path)
        self._records_file = None

    @property
    def manifest_path(self):
        return self.path / MANIFEST_NAME

    @property
    def records_path(self):
        return self.path / RECORDS_NAME

    def exists(self):
        return self.manifest_path.exists()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def begin(self, identity, resume=False):
        """Open the store for a campaign with ``identity``.

        Fresh start (``resume=False``): allowed only when the store is
        absent or still empty -- an existing store with completed
        records is hours of simulation, so overwriting it without
        ``resume`` raises :class:`StoreError` instead of silently
        discarding them (delete the directory to really start over).
        Resume: the stored identity must match exactly
        (:class:`StoreMismatchError` otherwise) and a torn trailing
        record -- the footprint of a kill mid-write -- is truncated
        away.  Returns the records already on disk,
        ``{index: FaultRecord}``.
        """
        self.path.mkdir(parents=True, exist_ok=True)
        stored = {}
        if resume and self.exists():
            manifest = self.manifest()
            if manifest.get("identity") != identity:
                raise StoreMismatchError(
                    f"store at {self.path} was written by a different "
                    f"campaign:\n  stored:  {manifest.get('identity')}"
                    f"\n  current: {identity}"
                )
            self._recover_records_tail()
            stored = self.records()
        else:
            existing = self.records() if self.exists() else {}
            if existing:
                raise StoreError(
                    f"store at {self.path} already holds "
                    f"{len(existing)} completed records; pass resume "
                    f"(--resume) to continue it, or delete the "
                    f"directory to start over"
                )
            self._write_manifest({
                "format": FORMAT,
                "identity": identity,
                "git": git_describe(),
                "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            })
            self.records_path.write_text("")
        self._records_file = open(self.records_path, "a",
                                  encoding="utf-8")
        return stored

    def close(self):
        if self._records_file is not None:
            self._records_file.close()
            self._records_file = None

    # ------------------------------------------------------------------
    # manifest
    # ------------------------------------------------------------------

    def manifest(self):
        try:
            manifest = json.loads(self.manifest_path.read_text())
        except FileNotFoundError:
            raise StoreError(f"no campaign store at {self.path}")
        except json.JSONDecodeError as exc:
            raise StoreError(
                f"corrupt manifest at {self.manifest_path}: {exc}"
            )
        if manifest.get("format") != FORMAT:
            raise StoreError(
                f"store at {self.path} has format "
                f"{manifest.get('format')!r}, this code reads format "
                f"{FORMAT} -- re-run the campaign to rewrite it"
            )
        return manifest

    def _write_manifest(self, manifest):
        # Atomic rewrite: a crash mid-write must not tear the manifest.
        tmp = self.manifest_path.with_suffix(".tmp")
        tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True)
                       + "\n")
        os.replace(tmp, self.manifest_path)

    def set_golden(self, golden_cycles, golden_insts, end_cycle,
                   population, bits):
        """Record the golden summary so a fully completed campaign can
        later resume into a result -- and redraw its fault samples for
        cross-checking -- without simulating."""
        manifest = self.manifest()
        manifest["golden"] = {
            "cycles": golden_cycles,
            "insts": golden_insts,
            "end_cycle": end_cycle,
            "population": population,
            "bits": bits,
        }
        self._write_manifest(manifest)

    def golden_info(self):
        """The recorded golden summary, or None before the golden phase."""
        return self.manifest().get("golden")

    # ------------------------------------------------------------------
    # records
    # ------------------------------------------------------------------

    def append(self, index, record):
        """Durably append one completed fault (flushed per record)."""
        if self._records_file is None:
            raise StoreError("store not opened with begin()")
        self._records_file.write(
            json.dumps(record_to_json(index, record)) + "\n"
        )
        self._records_file.flush()

    def records(self):
        """All intact records on disk, ``{index: FaultRecord}``.

        A torn final line (kill mid-append) is ignored; corruption
        anywhere earlier raises :class:`StoreError`.
        """
        out = {}
        try:
            lines = self.records_path.read_text().split("\n")
        except FileNotFoundError:
            return out
        # split() leaves a trailing "" for a newline-terminated file;
        # anything non-empty after the last newline is a torn record.
        for lineno, line in enumerate(lines):
            if not line:
                continue
            try:
                index, record = record_from_json(json.loads(line))
            except (json.JSONDecodeError, KeyError, ValueError) as exc:
                if lineno == len(lines) - 1:
                    continue  # torn tail: the in-flight fault of a kill
                raise StoreError(
                    f"corrupt record at {self.records_path}:"
                    f"{lineno + 1}: {exc}"
                )
            out[index] = record
        return out

    def _recover_records_tail(self):
        """Truncate a half-written final line in place."""
        try:
            blob = self.records_path.read_bytes()
        except FileNotFoundError:
            self.records_path.write_text("")
            return
        if blob and not blob.endswith(b"\n"):
            keep = blob.rfind(b"\n") + 1
            self.records_path.write_bytes(blob[:keep])

    def __repr__(self):
        return f"CampaignStore({str(self.path)!r})"


def load_store(path):
    """Read one store: ``(manifest, {index: FaultRecord})``."""
    store = CampaignStore(path)
    return store.manifest(), store.records()


def load_stores(paths):
    """Read and merge several stores for reporting.

    Returns a list of ``(manifest, records)`` pairs, one per store, in
    the given order.  Stores are independent campaigns (different
    workloads/levels/structures), so merging means collecting, not
    concatenating records.
    """
    return [load_store(path) for path in paths]
