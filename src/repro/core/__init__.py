"""The paper's primary contribution: the cross-level reliability study.

:class:`CrossLevelStudy` configures the two injection front-ends
equivalently (same workloads, equivalent structures, same fault samples,
same observation points and termination rules) and regenerates every
table and figure of the paper's evaluation.
"""

from repro.core.figures import figure_series
from repro.core.study import CrossLevelStudy, StudyConfig
from repro.core.tables import table1_rows, table2_rows

__all__ = [
    "CrossLevelStudy",
    "StudyConfig",
    "figure_series",
    "table1_rows",
    "table2_rows",
]
