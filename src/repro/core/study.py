"""Cross-level study orchestration (compatibility layer).

Since the scenario redesign, the supported experiment surface is
:mod:`repro.scenario`: declare a :class:`~repro.scenario.spec
.ScenarioSpec` (TOML/JSON or Python), run it through
:class:`~repro.scenario.runner.ScenarioRunner`, query the returned
:class:`~repro.scenario.resultset.ResultSet`.  The classes here keep
the historical Python API alive as thin shims over that machinery:

* :class:`StudyConfig` validates its knobs by building a
  :class:`ScenarioSpec` (exposed as :attr:`StudyConfig.spec`) and
  derives its run header from the shared knob table;
* :class:`CrossLevelStudy` dispatches every figure's campaigns through
  one persistent :class:`ScenarioRunner`, which also gives the legacy
  path golden-capture sharing and per-cell result caching for free.

Figure results keep their historical ``{series: {workload:
CampaignResult}}`` shape, bit-identical to the pre-scenario code path.
"""

import os
import pathlib

from repro.analysis.compare import CrossLevelComparison
from repro.injection.campaign import SCALED_WINDOW
from repro.sim import registry as sim_registry
from repro.workloads.registry import WORKLOAD_NAMES

#: The paper analyses only the shorter benchmarks with the RTL SOP flow
#: (Fig. 3) because full RTL runs of the long ones are infeasible.
FIG3_WORKLOADS = ("caes", "stringsearch", "susan_corners", "susan_edges",
                  "susan_smooth")


def default_samples():
    """Sample count per (workload, structure, mode) series.

    The Leveugle-exact size is ~4000 (reported in every result); the
    default here is wall-clock bounded and overridable with
    ``REPRO_SFI_SAMPLES``.
    """
    return int(os.environ.get("REPRO_SFI_SAMPLES", "40"))


class StudyConfig:
    """Configuration of one full cross-level study.

    A compatibility shim: the knobs live on, but validation and the
    run header are delegated to the scenario layer (:attr:`spec`).
    """

    def __init__(self, workloads=WORKLOAD_NAMES, samples=None, seed=2017,
                 window=SCALED_WINDOW, distribution="normal",
                 same_binaries=False, jobs=1, batch_size=None, lanes=1,
                 store=None, resume=False, prune="dead"):
        self.workloads = tuple(workloads)
        self.samples = samples if samples is not None else default_samples()
        self.seed = seed
        self.window = window
        self.distribution = distribution
        #: Ablation A3: force both levels onto one toolchain's binary.
        self.same_binaries = same_binaries
        #: Worker processes per campaign's faulty-run phase (``1`` =
        #: serial, ``None`` = one per CPU); see repro.injection.executor.
        self.jobs = jobs
        self.batch_size = batch_size
        #: Vectorized lane count for the faulty phase (``repro.batch``;
        #: effective on batchable levels only -- arch and rtl).
        self.lanes = lanes
        #: Root directory for per-campaign stores (``None`` = volatile).
        #: Each (level, workload, structure, mode) series gets its own
        #: subdirectory; see repro.injection.store.
        self.store = store
        #: Load already-completed faults from the store instead of
        #: re-running them.
        self.resume = resume
        #: Lifetime-aware fault pruning mode for every campaign
        #: (``off``/``dead``/``group``; see :mod:`repro.prune`).
        self.prune = prune
        self._spec = None

    @property
    def spec(self):
        """The equivalent :class:`~repro.scenario.spec.ScenarioSpec`
        (built lazily; validation errors surface here with the
        offending field named)."""
        if self._spec is None:
            from repro.scenario.spec import ScenarioSpec

            self._spec = ScenarioSpec(
                name="study",
                workloads=self.workloads,
                samples=self.samples,
                seed=self.seed,
                window="to-end" if self.window is None else self.window,
                distribution=self.distribution,
                jobs=self.jobs,
                batch_size=self.batch_size,
                lanes=self.lanes,
                prune=self.prune,
                store=None if self.store is None else str(self.store),
                # ``resume`` without a store is a no-op at the campaign
                # layer; the scenario schema treats it as an authoring
                # error, so only carry it when it can take effect.
                resume=self.resume and self.store is not None,
                same_binaries=self.same_binaries,
            )
        return self._spec

    def describe(self):
        """One line identifying the run (printed by ``repro-study``),
        from the same knob table every other run header uses."""
        from repro.scenario.knobs import describe_knobs

        head = (f"{len(self.workloads)} workloads x {self.samples} "
                f"faults")
        return describe_knobs(head, {
            "window": self.window,
            "distribution": self.distribution,
            "seed": self.seed,
            "prune": self.prune,
            "parallel": (self.jobs, self.batch_size, None),
            "lanes": self.lanes,
            "store": self.store,
            "resume": self.resume and self.store is not None,
        })

    def campaign_store(self, level, workload, structure, mode):
        """The per-series store directory, or None when not persisting
        (the scenario layer's naming is the single source)."""
        if self.store is None:
            return None
        name = self.spec.cell(level, workload, structure, mode).store_name()
        return pathlib.Path(self.store) / name

    def frontend(self, level, workload):
        """The campaign front-end for any registered level.

        With ``same_binaries`` (ablation A3) every level is forced onto
        the microarchitectural flow's toolchain.
        """
        toolchain = None
        if self.same_binaries:
            toolchain = sim_registry.get("uarch").default_toolchain
        return sim_registry.create_frontend(level, workload,
                                            toolchain=toolchain)

    def gefin(self, workload):
        return self.frontend("uarch", workload)

    def safety_verifier(self, workload):
        return self.frontend("rtl", workload)


class CrossLevelStudy:
    """Runs the paper's experiment matrix and caches per-series results.

    Every campaign dispatches through one persistent
    :class:`~repro.scenario.runner.ScenarioRunner`, so repeated figure
    calls recall cached cell results and campaigns sharing a golden
    trajectory (the ``pinout``/``pinout-notimer`` series of one
    workload) capture it once.
    """

    def __init__(self, config=None):
        from repro.scenario.runner import ScenarioRunner

        self.config = config or StudyConfig()
        self._runner = ScenarioRunner(self.config.spec)
        self._pool_workload = None

    # ------------------------------------------------------------------

    def _campaign(self, level, workload, structure, mode):
        # Every figure iterates workload-major, so pooled goldens from
        # other workloads can be released at each workload boundary --
        # the pool never holds more than one workload's captures.
        if workload != self._pool_workload:
            self._runner.release_goldens(keep_workload=workload)
            self._pool_workload = workload
        cell = self.config.spec.cell(level, workload, structure, mode)
        return self._runner.run_cell(cell)

    # ------------------------------------------------------------------
    # Figure 1: register-file unsafeness, pinout OP, windowed
    # ------------------------------------------------------------------

    def figure1(self, progress=None):
        """Returns ``{series: {workload: CampaignResult}}`` for Fig. 1."""
        series = {"GeFIN": {}, "RTL": {}, "GeFIN-no timer": {}}
        for workload in self.config.workloads:
            series["GeFIN"][workload] = self._campaign(
                "uarch", workload, "regfile", "pinout")
            series["RTL"][workload] = self._campaign(
                "rtl", workload, "regfile", "pinout")
            series["GeFIN-no timer"][workload] = self._campaign(
                "uarch", workload, "regfile", "pinout-notimer")
            if progress:
                progress("fig1", workload)
        return series

    # ------------------------------------------------------------------
    # Figure 2: L1D unsafeness, pinout OP, windowed (+ RTL acceleration)
    # ------------------------------------------------------------------

    def figure2(self, progress=None):
        series = {"GeFIN": {}, "RTL": {}, "GeFIN-no timer": {}}
        for workload in self.config.workloads:
            series["GeFIN"][workload] = self._campaign(
                "uarch", workload, "l1d.data", "pinout")
            series["RTL"][workload] = self._campaign(
                "rtl", workload, "l1d.data", "pinout")
            series["GeFIN-no timer"][workload] = self._campaign(
                "uarch", workload, "l1d.data", "pinout-notimer")
            if progress:
                progress("fig2", workload)
        return series

    # ------------------------------------------------------------------
    # Figure 3: L1D AVF with the software observation point
    # ------------------------------------------------------------------

    def figure3(self, workloads=FIG3_WORKLOADS, progress=None):
        series = {"GeFIN": {}, "RTL": {}}
        for workload in workloads:
            series["GeFIN"][workload] = self._campaign(
                "uarch", workload, "l1d.data", "avf")
            series["RTL"][workload] = self._campaign(
                "rtl", workload, "l1d.data", "sop")
            if progress:
                progress("fig3", workload)
        return series

    # ------------------------------------------------------------------
    # Headline deltas (SS V)
    # ------------------------------------------------------------------

    def headline(self, fig1=None, fig3=None):
        """The abstract's numbers: RF delta from Fig. 1, L1D delta from
        Fig. 3 (the paper's SS V references exactly those figures)."""
        fig1 = fig1 or self.figure1()
        fig3 = fig3 or self.figure3()
        rf = CrossLevelComparison("regfile", "pinout")
        for workload in self.config.workloads:
            rf.add_results(fig1["GeFIN"][workload], fig1["RTL"][workload])
        l1d = CrossLevelComparison("l1d.data", "avf")
        for workload in fig3["GeFIN"]:
            l1d.add_results(fig3["GeFIN"][workload],
                            fig3["RTL"][workload])
        return {"regfile": rf, "l1d": l1d}
