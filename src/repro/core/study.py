"""Cross-level study orchestration.

The study dispatches on abstraction levels exclusively through
:mod:`repro.sim.registry`, so every registered backend -- including the
``arch`` emulator tier -- is a valid campaign target.
"""

import os
import pathlib

from repro.analysis.compare import CrossLevelComparison
from repro.injection.campaign import SCALED_WINDOW, parallel_suffix
from repro.sim import registry as sim_registry
from repro.workloads.registry import WORKLOAD_NAMES

#: The paper analyses only the shorter benchmarks with the RTL SOP flow
#: (Fig. 3) because full RTL runs of the long ones are infeasible.
FIG3_WORKLOADS = ("caes", "stringsearch", "susan_corners", "susan_edges",
                  "susan_smooth")


def default_samples():
    """Sample count per (workload, structure, mode) series.

    The Leveugle-exact size is ~4000 (reported in every result); the
    default here is wall-clock bounded and overridable with
    ``REPRO_SFI_SAMPLES``.
    """
    return int(os.environ.get("REPRO_SFI_SAMPLES", "40"))


class StudyConfig:
    """Configuration of one full cross-level study."""

    def __init__(self, workloads=WORKLOAD_NAMES, samples=None, seed=2017,
                 window=SCALED_WINDOW, distribution="normal",
                 same_binaries=False, jobs=1, batch_size=None,
                 store=None, resume=False, prune="dead"):
        self.workloads = tuple(workloads)
        self.samples = samples if samples is not None else default_samples()
        self.seed = seed
        self.window = window
        self.distribution = distribution
        #: Ablation A3: force both levels onto one toolchain's binary.
        self.same_binaries = same_binaries
        #: Worker processes per campaign's faulty-run phase (``1`` =
        #: serial, ``None`` = one per CPU); see repro.injection.executor.
        self.jobs = jobs
        self.batch_size = batch_size
        #: Root directory for per-campaign stores (``None`` = volatile).
        #: Each (level, workload, structure, mode) series gets its own
        #: subdirectory; see repro.injection.store.
        self.store = store
        #: Load already-completed faults from the store instead of
        #: re-running them.
        self.resume = resume
        #: Lifetime-aware fault pruning mode for every campaign
        #: (``off``/``dead``/``group``; see :mod:`repro.prune`).
        self.prune = prune

    def describe(self):
        """One line identifying the run (printed by ``repro-study``)."""
        window = "to-end" if self.window is None else f"{self.window}cyc"
        parallel = parallel_suffix(self.jobs, self.batch_size)
        persist = ""
        if self.store is not None:
            persist = f", store={self.store}" + (", resume"
                                                 if self.resume else "")
        prune = "" if self.prune == "dead" else f", prune={self.prune}"
        return (
            f"{len(self.workloads)} workloads x {self.samples} faults,"
            f" window={window}, dist={self.distribution},"
            f" seed={self.seed}{prune}{parallel}{persist}"
        )

    def campaign_store(self, level, workload, structure, mode):
        """The per-series store directory, or None when not persisting."""
        if self.store is None:
            return None
        name = f"{level}-{workload}-{structure}-{mode}"
        return pathlib.Path(self.store) / name

    def frontend(self, level, workload):
        """The campaign front-end for any registered level.

        With ``same_binaries`` (ablation A3) every level is forced onto
        the microarchitectural flow's toolchain.
        """
        toolchain = None
        if self.same_binaries:
            toolchain = sim_registry.get("uarch").default_toolchain
        return sim_registry.create_frontend(level, workload,
                                            toolchain=toolchain)

    def gefin(self, workload):
        return self.frontend("uarch", workload)

    def safety_verifier(self, workload):
        return self.frontend("rtl", workload)


class CrossLevelStudy:
    """Runs the paper's experiment matrix and caches per-series results."""

    def __init__(self, config=None):
        self.config = config or StudyConfig()
        self._cache = {}

    # ------------------------------------------------------------------

    def _campaign(self, level, workload, structure, mode):
        key = (level, workload, structure, mode)
        if key in self._cache:
            return self._cache[key]
        cfg = self.config
        front = cfg.frontend(level, workload)
        result = front.campaign(
            structure, mode=mode, samples=cfg.samples, seed=cfg.seed,
            window=cfg.window, distribution=cfg.distribution,
            jobs=cfg.jobs, batch_size=cfg.batch_size,
            prune_mode=cfg.prune,
            store=cfg.campaign_store(level, workload, structure, mode),
            resume=cfg.resume,
        )
        self._cache[key] = result
        return result

    # ------------------------------------------------------------------
    # Figure 1: register-file unsafeness, pinout OP, windowed
    # ------------------------------------------------------------------

    def figure1(self, progress=None):
        """Returns ``{series: {workload: CampaignResult}}`` for Fig. 1."""
        series = {"GeFIN": {}, "RTL": {}, "GeFIN-no timer": {}}
        for workload in self.config.workloads:
            series["GeFIN"][workload] = self._campaign(
                "uarch", workload, "regfile", "pinout")
            series["RTL"][workload] = self._campaign(
                "rtl", workload, "regfile", "pinout")
            series["GeFIN-no timer"][workload] = self._campaign(
                "uarch", workload, "regfile", "pinout-notimer")
            if progress:
                progress("fig1", workload)
        return series

    # ------------------------------------------------------------------
    # Figure 2: L1D unsafeness, pinout OP, windowed (+ RTL acceleration)
    # ------------------------------------------------------------------

    def figure2(self, progress=None):
        series = {"GeFIN": {}, "RTL": {}, "GeFIN-no timer": {}}
        for workload in self.config.workloads:
            series["GeFIN"][workload] = self._campaign(
                "uarch", workload, "l1d.data", "pinout")
            series["RTL"][workload] = self._campaign(
                "rtl", workload, "l1d.data", "pinout")
            series["GeFIN-no timer"][workload] = self._campaign(
                "uarch", workload, "l1d.data", "pinout-notimer")
            if progress:
                progress("fig2", workload)
        return series

    # ------------------------------------------------------------------
    # Figure 3: L1D AVF with the software observation point
    # ------------------------------------------------------------------

    def figure3(self, workloads=FIG3_WORKLOADS, progress=None):
        series = {"GeFIN": {}, "RTL": {}}
        for workload in workloads:
            series["GeFIN"][workload] = self._campaign(
                "uarch", workload, "l1d.data", "avf")
            series["RTL"][workload] = self._campaign(
                "rtl", workload, "l1d.data", "sop")
            if progress:
                progress("fig3", workload)
        return series

    # ------------------------------------------------------------------
    # Headline deltas (SS V)
    # ------------------------------------------------------------------

    def headline(self, fig1=None, fig3=None):
        """The abstract's numbers: RF delta from Fig. 1, L1D delta from
        Fig. 3 (the paper's SS V references exactly those figures)."""
        fig1 = fig1 or self.figure1()
        fig3 = fig3 or self.figure3()
        rf = CrossLevelComparison("regfile", "pinout")
        for workload in self.config.workloads:
            rf.add_results(fig1["GeFIN"][workload], fig1["RTL"][workload])
        l1d = CrossLevelComparison("l1d.data", "avf")
        for workload in fig3["GeFIN"]:
            l1d.add_results(fig3["GeFIN"][workload],
                            fig3["RTL"][workload])
        return {"regfile": rf, "l1d": l1d}
