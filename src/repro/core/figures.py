"""Rendering of the paper's Figures 1-3 as grouped bar charts.

Figures render from the legacy ``{series: {workload: CampaignResult}}``
dictionaries; :func:`chart_from_resultset` adapts a scenario
:class:`~repro.scenario.resultset.ResultSet` plus a preset's
``[present]`` block into exactly that shape, which is how the preset
path reproduces the historical charts bit for bit.
"""

from repro.analysis.report import bar_chart


def chart_from_resultset(resultset, present):
    """Render a preset figure from its scenario results.

    ``present`` is the scenario's ``[present]`` block (``kind =
    "figure"``): ``title`` plus ``[[series]]`` entries mapping a series
    name to the (level, mode[, structure]) cells that populate it.
    """
    series = resultset.series(present["series"])
    return render_figure(series, present["title"])


def figure_series(series_results):
    """Convert ``{series: {workload: CampaignResult}}`` to chart input."""
    labels = list(next(iter(series_results.values())).keys())
    series = {
        name: [results[label].unsafeness for label in labels]
        for name, results in series_results.items()
    }
    return series, labels


def render_figure(series_results, title):
    series, labels = figure_series(series_results)
    return bar_chart(series, labels, title=title)


def figure1_chart(results):
    return render_figure(
        results, "Fig. 1: Register File vulnerability (unsafeness)"
    )


def figure2_chart(results):
    return render_figure(
        results, "Fig. 2: L1D cache vulnerability (unsafeness)"
    )


def figure3_chart(results):
    return render_figure(
        results,
        "Fig. 3: L1D cache AVF using software observation point",
    )
