"""Rendering of the paper's Figures 1-3 as grouped bar charts."""

from repro.analysis.report import bar_chart


def figure_series(series_results):
    """Convert ``{series: {workload: CampaignResult}}`` to chart input."""
    labels = list(next(iter(series_results.values())).keys())
    series = {
        name: [results[label].unsafeness for label in labels]
        for name, results in series_results.items()
    }
    return series, labels


def render_figure(series_results, title):
    series, labels = figure_series(series_results)
    return bar_chart(series, labels, title=title)


def figure1_chart(results):
    return render_figure(
        results, "Fig. 1: Register File vulnerability (unsafeness)"
    )


def figure2_chart(results):
    return render_figure(
        results, "Fig. 2: L1D cache vulnerability (unsafeness)"
    )


def figure3_chart(results):
    return render_figure(
        results,
        "Fig. 3: L1D cache AVF using software observation point",
    )
