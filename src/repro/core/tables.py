"""Regeneration of the paper's Tables I and II.

Table II compares the two hardware tiers, as the paper does; the
``arch_tier_rows`` extension adds the emulator row the paper's taxonomy
(SS I) implies -- the architectural tier's throughput against the
microarchitectural flow it would pre-screen for.
"""

import time

from repro.analysis.report import render_table
from repro.injection.arch_emu import ArchEmu
from repro.injection.gefin import GeFIN
from repro.injection.safety_verifier import SafetyVerifier
from repro.uarch.config import CortexA9Config
from repro.workloads.registry import WORKLOAD_NAMES


def table1_rows(config=None):
    """Table I: microarchitectural configuration of the Cortex-A9."""
    return (config or CortexA9Config()).table_rows()


def render_table1(config=None):
    return render_table(
        ("Microarchitectural attribute", "Value"),
        table1_rows(config),
        title="TABLE I: MICROARCHITECTURAL CONFIGURATION OF CORTEX-A9",
    )


def _timed_golden(front):
    started = time.perf_counter()
    sim = front.golden_run()
    seconds = time.perf_counter() - started
    if not sim.exited:
        raise RuntimeError(f"golden run failed on {front!r}: {sim.fault}")
    return seconds, sim


def table2_rows(workloads=WORKLOAD_NAMES, rtl_traced=True):
    """Table II: average simulation throughput and time per framework.

    Paper columns: benchmark; RTL s/run; GeFIN s/run; ratio; RTL Mcycles;
    GeFIN Mcycles.  We report kcycles (workloads are scaled ~500x) and
    measure the RTL flow with its signal tracing on by default -- the
    honest analogue of NCSIM's always-on signal evaluation.
    """
    rows = []
    ratios = []
    for workload in workloads:
        gefin = GeFIN(workload)
        verifier = SafetyVerifier(workload, trace_signals=rtl_traced)
        rtl_seconds, rtl_sim = _timed_golden(verifier)
        uarch_seconds, uarch_sim = _timed_golden(gefin)
        rtl_cycles = rtl_sim.cycle
        uarch_cycles = uarch_sim.cycle
        ratio = rtl_seconds / uarch_seconds if uarch_seconds else 0.0
        ratios.append(ratio)
        rows.append({
            "benchmark": workload,
            "rtl_s_per_run": rtl_seconds,
            "gefin_s_per_run": uarch_seconds,
            "ratio": ratio,
            "rtl_kcycles": rtl_cycles / 1000.0,
            "gefin_kcycles": uarch_cycles / 1000.0,
        })
    average = sum(ratios) / len(ratios) if ratios else 0.0
    return rows, average


def arch_tier_rows(workloads=WORKLOAD_NAMES):
    """The architectural-emulator tier's throughput (Table II extension).

    Columns: benchmark; arch s/run; GeFIN s/run; the GeFIN/arch ratio
    (how much a golden pre-run at the emulator tier saves); retired
    kinsts.  The arch tier has no timing model, so no cycle column --
    its "cycles" are an instruction-count proxy by construction.
    """
    rows = []
    ratios = []
    for workload in workloads:
        arch_seconds, arch_sim = _timed_golden(ArchEmu(workload))
        uarch_seconds, _ = _timed_golden(GeFIN(workload))
        ratio = uarch_seconds / arch_seconds if arch_seconds else 0.0
        ratios.append(ratio)
        rows.append({
            "benchmark": workload,
            "arch_s_per_run": arch_seconds,
            "gefin_s_per_run": uarch_seconds,
            "ratio": ratio,
            "kinsts": arch_sim.icount / 1000.0,
        })
    average = sum(ratios) / len(ratios) if ratios else 0.0
    return rows, average


def render_arch_tier(rows, average):
    table_rows = [
        (
            r["benchmark"],
            f"{r['arch_s_per_run'] * 1000:.1f} ms/run",
            f"{r['gefin_s_per_run'] * 1000:.1f} ms/run",
            f"{r['ratio']:.1f}",
            f"{r['kinsts']:.1f} k",
        )
        for r in rows
    ]
    table_rows.append(("Average", "", "", f"{average:.1f}", ""))
    return render_table(
        ("Benchmark", "Arch (ISS)", "GeFIN", "Ratio", "Insts"),
        table_rows,
        title=(
            "TABLE II EXT: ARCHITECTURAL-EMULATOR TIER THROUGHPUT"
        ),
    )


def render_table2(rows, average):
    table_rows = [
        (
            r["benchmark"],
            f"{r['rtl_s_per_run']:.2f} s/run",
            f"{r['gefin_s_per_run']:.2f} s/run",
            f"{r['ratio']:.1f}",
            f"{r['rtl_kcycles']:.1f} k",
            f"{r['gefin_kcycles']:.1f} k",
        )
        for r in rows
    ]
    table_rows.append(("Average", "", "", f"{average:.1f}", "", ""))
    return render_table(
        ("Benchmark", "RTL", "GeFIN", "Ratio", "RTL cycles",
         "GeFIN cycles"),
        table_rows,
        title=(
            "TABLE II: AVERAGE SIMULATION THROUGHPUT AND TIME PER RUN"
        ),
    )
