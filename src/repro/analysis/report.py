"""ASCII rendering of the paper's tables and figures."""


def render_table(headers, rows, title=None):
    """A monospace table with column auto-sizing."""
    columns = len(headers)
    widths = [len(str(h)) for h in headers]
    for row in rows:
        for i in range(columns):
            widths[i] = max(widths[i], len(str(row[i])))
    sep = "+".join("-" * (w + 2) for w in widths)
    sep = f"+{sep}+"

    def fmt(row):
        cells = " | ".join(str(c).ljust(w) for c, w in zip(row, widths))
        return f"| {cells} |"

    lines = []
    if title:
        lines.append(title)
    lines.append(sep)
    lines.append(fmt(headers))
    lines.append(sep)
    for row in rows:
        lines.append(fmt(row))
    lines.append(sep)
    return "\n".join(lines)


def bar_chart(series, labels, max_width=50, title=None, value_format=None):
    """Horizontal grouped bar chart, one group per label.

    ``series`` maps series name -> list of values aligned with ``labels``
    (the paper's Figs. 1-3 are grouped bar charts: GeFIN / RTL /
    GeFIN-no-timer).
    """
    value_format = value_format or (lambda v: f"{100 * v:5.1f}%")
    peak = max(
        (v for values in series.values() for v in values if v is not None),
        default=0.0,
    )
    scale = max_width / peak if peak > 0 else 0.0
    name_width = max(len(name) for name in series)
    label_width = max(len(label) for label in labels)
    lines = []
    if title:
        lines.append(title)
    for i, label in enumerate(labels):
        lines.append(f"{label}:")
        for name, values in series.items():
            value = values[i]
            if value is None:
                lines.append(
                    f"  {name.ljust(name_width)} "
                    f"{'(not measured)'.rjust(7)}"
                )
                continue
            bar = "#" * max(int(round(value * scale)), 0)
            lines.append(
                f"  {name.ljust(name_width)} {value_format(value)} {bar}"
            )
    del label_width
    return "\n".join(lines)


def speedup_table(results, title=None):
    """Wall-clock accounting of the parallel executor, per campaign.

    ``wall_s`` is the measured end-to-end time (golden phase + faulty
    runs); ``serial_est_s`` is the time a one-process run would have
    spent (golden + per-run wall seconds back to back); ``speedup`` is
    their ratio -- ~1.0 for ``jobs=1``, approaching the worker count on
    an unloaded multi-core host.
    """
    headers = ("workload", "level", "structure", "n", "sim", "jobs",
               "wall_s", "serial_est_s", "speedup")
    rows = []
    for r in results:
        rows.append((
            r.workload, r.level, r.structure, r.n, r.simulated_count,
            r.jobs,
            f"{r.total_seconds:.2f}",
            f"{r.estimated_serial_seconds:.2f}",
            f"{r.speedup:.2f}x",
        ))
    return render_table(headers, rows, title=title)


def store_table(paths, title=None):
    """Summary of one or more on-disk campaign stores, merged.

    Reads each store's manifest and intact records (see
    :mod:`repro.injection.store`) and renders the standard per-campaign
    columns plus completion, so an interrupted campaign's partial
    tallies are inspectable before it is resumed.  Tallies come from
    :meth:`CampaignStore.class_tally` -- binary stores (format 2) are
    counted straight off the mmap lanes, so a million-fault store
    summarizes without materializing a single record object.
    """
    from repro.injection.store import CampaignStore

    headers = ("store", "workload", "level", "structure", "done",
               "of", "unsafe", "masked", "sdc", "due", "hang", "mism",
               "latent", "pruned", "incid", "git")
    rows = []
    for path in paths:
        store = CampaignStore(path)
        manifest = store.manifest()
        tally = store.class_tally()
        identity = manifest.get("identity", {})
        config = identity.get("config", {})
        by_class = tally["classes"]
        n = tally["n"]
        rows.append((
            str(path), identity.get("workload", "?"),
            identity.get("level", "?"), identity.get("structure", "?"),
            n, config.get("samples", "?"),
            f"{100 * tally['unsafe'] / n:.1f}%" if n else "-",
            by_class.get("masked", 0), by_class.get("sdc", 0),
            by_class.get("due", 0), by_class.get("hang", 0),
            by_class.get("mismatch", 0), by_class.get("latent", 0),
            tally["pruned"],
            store.incident_count(),
            manifest.get("git") or "-",
        ))
    return render_table(headers, rows, title=title)


def scenario_table(resultset, title=None):
    """Per-cell summary of a scenario run, one row per grid cell.

    The ``cell`` column is the cell's coordinate label (level/workload/
    structure/mode plus any sweep coordinates).  Zero-budget
    (golden-only) cells show their golden cycle count and ``-`` for the
    vulnerability columns.  Deterministic for a fixed seed -- wall
    clock stays in :func:`speedup_table`.
    """
    headers = ("cell", "n", "unsafe", "masked", "sdc", "due", "hang",
               "mism", "latent", "pruned", "incid", "sim", "golden_kcyc")
    rows = []
    for cell, r in resultset:
        s = r.summary()
        rows.append((
            cell.label(), s["n"],
            f"{100 * s['unsafeness']:.1f}%" if s["n"] else "-",
            s["masked"], s["sdc"], s["due"], s["hang"], s["mismatch"],
            s["latent"], s["pruned"], s.get("incidents", 0),
            s["simulated"],
            f"{s['golden_cycles'] / 1000.0:.1f}",
        ))
    return render_table(headers, rows, title=title)


def campaign_table(results, title=None):
    """Standard per-campaign summary table.

    Every column is deterministic for a fixed seed -- ``pruned`` counts
    faults classified from the golden lifetime trace without
    simulation, and ``kcyc/sim`` is the mean simulated (replay + tail)
    kcycles per simulated fault.  Wall-clock accounting lives in
    :func:`speedup_table`; keeping it out of this table makes the
    benchmark artifacts built from it rewrite-free across reruns (see
    benchmarks/conftest.py).
    """
    headers = ("workload", "level", "structure", "n", "unsafe", "ci95",
               "masked", "sdc", "due", "hang", "mism", "pruned",
               "kcyc/sim")
    rows = []
    for r in results:
        s = r.summary()
        low, high = s["ci95"]
        kcyc = (r.simulated_cycles / s["simulated"] / 1000.0
                if s["simulated"] else 0.0)
        rows.append((
            s["workload"], s["level"], s["structure"], s["n"],
            f"{100 * s['unsafeness']:.1f}%",
            f"[{100 * low:.0f},{100 * high:.0f}]%",
            s["masked"], s["sdc"], s["due"], s["hang"], s["mismatch"],
            s["pruned"],
            f"{kcyc:.1f}",
        ))
    return render_table(headers, rows, title=title)
