"""ASCII rendering of the paper's tables and figures."""


def render_table(headers, rows, title=None):
    """A monospace table with column auto-sizing."""
    columns = len(headers)
    widths = [len(str(h)) for h in headers]
    for row in rows:
        for i in range(columns):
            widths[i] = max(widths[i], len(str(row[i])))
    sep = "+".join("-" * (w + 2) for w in widths)
    sep = f"+{sep}+"

    def fmt(row):
        cells = " | ".join(str(c).ljust(w) for c, w in zip(row, widths))
        return f"| {cells} |"

    lines = []
    if title:
        lines.append(title)
    lines.append(sep)
    lines.append(fmt(headers))
    lines.append(sep)
    for row in rows:
        lines.append(fmt(row))
    lines.append(sep)
    return "\n".join(lines)


def bar_chart(series, labels, max_width=50, title=None, value_format=None):
    """Horizontal grouped bar chart, one group per label.

    ``series`` maps series name -> list of values aligned with ``labels``
    (the paper's Figs. 1-3 are grouped bar charts: GeFIN / RTL /
    GeFIN-no-timer).
    """
    value_format = value_format or (lambda v: f"{100 * v:5.1f}%")
    peak = max(
        (v for values in series.values() for v in values if v is not None),
        default=0.0,
    )
    scale = max_width / peak if peak > 0 else 0.0
    name_width = max(len(name) for name in series)
    label_width = max(len(label) for label in labels)
    lines = []
    if title:
        lines.append(title)
    for i, label in enumerate(labels):
        lines.append(f"{label}:")
        for name, values in series.items():
            value = values[i]
            if value is None:
                lines.append(
                    f"  {name.ljust(name_width)} "
                    f"{'(not measured)'.rjust(7)}"
                )
                continue
            bar = "#" * max(int(round(value * scale)), 0)
            lines.append(
                f"  {name.ljust(name_width)} {value_format(value)} {bar}"
            )
    del label_width
    return "\n".join(lines)


def campaign_table(results, title=None):
    """Standard per-campaign summary table."""
    headers = ("workload", "level", "structure", "n", "unsafe", "ci95",
               "masked", "sdc", "due", "hang", "mism", "s/run")
    rows = []
    for r in results:
        s = r.summary()
        low, high = s["ci95"]
        rows.append((
            s["workload"], s["level"], s["structure"], s["n"],
            f"{100 * s['unsafeness']:.1f}%",
            f"[{100 * low:.0f},{100 * high:.0f}]%",
            s["masked"], s["sdc"], s["due"], s["hang"], s["mismatch"],
            f"{s['s_per_run']:.2f}",
        ))
    return render_table(headers, rows, title=title)
