"""Result analysis: vulnerability metrics, cross-level comparison and the
ASCII table/figure renderers used by the benchmark harness."""

from repro.analysis.compare import CrossLevelComparison, LevelDelta
from repro.analysis.report import bar_chart, render_table

__all__ = ["CrossLevelComparison", "LevelDelta", "bar_chart",
           "render_table"]
