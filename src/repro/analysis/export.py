"""CSV export of campaign results (for external plotting/analysis)."""

import csv
import io

_FIELDS = (
    "workload", "level", "structure", "n", "unsafeness", "ci95_low",
    "ci95_high", "masked", "sdc", "due", "hang", "mismatch", "latent",
    "golden_cycles", "s_per_run", "population", "recommended_samples",
    "achieved_margin", "jobs", "pruned", "simulated", "resumed",
    "incidents", "retried", "total_s", "speedup",
)


#: Extra leading columns when exporting a scenario ResultSet: the cell
#: coordinate label, the observation mode and the sweep coordinates
#: (``axis=value`` pairs, space-separated).
_CELL_FIELDS = ("cell", "mode", "sweep")


def results_to_csv(results, cells=None):
    """Render an iterable of :class:`CampaignResult` to CSV text.

    With ``cells`` (a parallel iterable of
    :class:`~repro.scenario.spec.CellSpec`, as a ResultSet provides),
    each row is prefixed with the cell coordinates, so a sweep's CSV
    is self-describing.
    """
    cells = list(cells) if cells is not None else None
    fields = _FIELDS if cells is None else _CELL_FIELDS + _FIELDS
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fields)
    writer.writeheader()
    for i, result in enumerate(results):
        summary = result.summary()
        low, high = summary.pop("ci95")
        summary["ci95_low"] = f"{low:.6f}"
        summary["ci95_high"] = f"{high:.6f}"
        summary["unsafeness"] = f"{summary['unsafeness']:.6f}"
        summary["achieved_margin"] = f"{summary['achieved_margin']:.6f}"
        summary["s_per_run"] = f"{summary['s_per_run']:.6f}"
        summary["total_s"] = f"{summary['total_s']:.6f}"
        summary["speedup"] = f"{summary['speedup']:.3f}"
        if cells is not None:
            cell = cells[i]
            summary["cell"] = cell.label()
            summary["mode"] = cell.mode
            summary["sweep"] = " ".join(f"{k}={v}"
                                        for k, v in cell.axes)
        writer.writerow(summary)
    return buffer.getvalue()


def records_to_csv(result):
    """Per-fault dump of one campaign (fault, class, timing)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow((
        "structure", "bit", "cycle", "original_cycle", "class", "detail",
        "sim_cycles", "replay_cycles", "wall_seconds", "pruned",
    ))
    for record in result.records:
        fault = record.fault
        writer.writerow((
            fault.structure, fault.bit, fault.cycle, fault.original_cycle,
            record.fclass.value, record.detail, record.sim_cycles,
            record.replay_cycles, f"{record.wall_seconds:.6f}",
            record.pruned,
        ))
    return buffer.getvalue()
