"""Cross-level comparison -- the paper's headline analysis.

The abstract states the result in two units; both are computed here:

* **percentile units** (pp): ``|v_uarch - v_rtl| * 100`` averaged over
  benchmarks (paper: ~0.7 pp for the register file, ~3 pp for L1D);
* **relative difference**: ``|v_uarch - v_rtl| / max(v_uarch, v_rtl)``
  averaged over benchmarks (paper: ~10 % RF, ~20 % L1D).
"""


class LevelDelta:
    """Vulnerability difference between the two levels for one workload."""

    __slots__ = ("workload", "uarch", "rtl")

    def __init__(self, workload, uarch, rtl):
        self.workload = workload
        self.uarch = uarch
        self.rtl = rtl

    @property
    def percentile_units(self):
        """Absolute difference in percentage points."""
        return abs(self.uarch - self.rtl) * 100.0

    @property
    def relative(self):
        """Relative difference against the larger estimate (0 when both
        levels agree that the structure is invulnerable)."""
        top = max(self.uarch, self.rtl)
        if top == 0.0:
            return 0.0
        return abs(self.uarch - self.rtl) / top

    def __repr__(self):
        return (
            f"LevelDelta({self.workload}: uarch={self.uarch:.3f}"
            f" rtl={self.rtl:.3f} -> {self.percentile_units:.1f}pp,"
            f" {100 * self.relative:.0f}%)"
        )


class CrossLevelComparison:
    """Aggregates per-workload deltas for one structure/mode series."""

    def __init__(self, structure, mode=""):
        self.structure = structure
        self.mode = mode
        self.deltas = []

    def add(self, workload, uarch_vulnerability, rtl_vulnerability):
        self.deltas.append(
            LevelDelta(workload, uarch_vulnerability, rtl_vulnerability)
        )

    def add_results(self, uarch_result, rtl_result):
        if uarch_result.workload != rtl_result.workload:
            raise ValueError("mismatched workloads")
        self.add(uarch_result.workload, uarch_result.unsafeness,
                 rtl_result.unsafeness)

    @property
    def mean_percentile_units(self):
        if not self.deltas:
            return 0.0
        return sum(d.percentile_units for d in self.deltas) \
            / len(self.deltas)

    @property
    def mean_relative(self):
        if not self.deltas:
            return 0.0
        return sum(d.relative for d in self.deltas) / len(self.deltas)

    @property
    def worst(self):
        if not self.deltas:
            return None
        return max(self.deltas, key=lambda d: d.percentile_units)

    def agreement_within(self, percentile_units):
        """How many workloads agree within the given pp bound (the paper
        reports "less than 10% different vulnerability in 5 benchmarks")."""
        return sum(
            1 for d in self.deltas if d.percentile_units <= percentile_units
        )

    def rows(self):
        """Table rows: workload, uarch, rtl, delta-pp, delta-relative."""
        out = []
        for d in self.deltas:
            out.append((
                d.workload,
                f"{100 * d.uarch:.1f}%",
                f"{100 * d.rtl:.1f}%",
                f"{d.percentile_units:.1f}pp",
                f"{100 * d.relative:.0f}%",
            ))
        out.append((
            "average",
            f"{100 * sum(d.uarch for d in self.deltas) / max(len(self.deltas), 1):.1f}%",
            f"{100 * sum(d.rtl for d in self.deltas) / max(len(self.deltas), 1):.1f}%",
            f"{self.mean_percentile_units:.1f}pp",
            f"{100 * self.mean_relative:.0f}%",
        ))
        return out

    def __repr__(self):
        return (
            f"CrossLevelComparison({self.structure}/{self.mode}:"
            f" {self.mean_percentile_units:.1f}pp,"
            f" {100 * self.mean_relative:.0f}% over {len(self.deltas)}"
            f" workloads)"
        )
