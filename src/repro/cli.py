"""Command-line entry point: ``repro-study``.

The primary command runs a declarative scenario (see DESIGN.md's
"scenario layer" section for the spec reference)::

    repro-study run scenario.toml [--set key=value] [--csv out.csv]
    repro-study run fig1 --set faults.samples=100   # built-in preset
    repro-study list                                 # valid spec values

The paper's artifacts are committed preset scenarios
(``src/repro/scenario/presets/*.toml``); the historical subcommands are
thin loaders over them and stay bit-identical to the pre-scenario code
paths::

    repro-study table1
    repro-study table2 [--workloads sha,fft] [--no-trace]
    repro-study fig1|fig2|fig3 [--samples N] [--workloads ...] [--jobs N]
    repro-study headline [--samples N] [--jobs N]
    repro-study golden <workload> [--level arch|uarch|rtl]
    repro-study store <dir> [<dir> ...] [--export jsonl]
    repro-study staticcheck [<workload>] [--all]

``--level`` choices come from the backend registry
(``repro.sim.registry``): the architectural emulator (``arch``), the
microarchitectural model (``uarch``) and the RT-level model (``rtl``).

Campaign-running subcommands (``run``, ``fig1``..``fig3``,
``headline``) accept ``--jobs`` to fan the faulty runs of each campaign
out over a process pool (default: one worker per CPU; ``--jobs 1``
forces the serial path), ``--prune {off,dead,group,static}`` to control
fault pruning -- lifetime-aware from the golden access trace
(``dead``/``group``) or capture-free from static dataflow analysis of
the program text (``static``, :mod:`repro.staticcheck`; arch and rtl
tiers) -- plus ``--store DIR``
to persist every completed fault to an on-disk campaign store and
``--resume`` to continue an interrupted run without repeating finished
faults.  ``--lanes N`` additionally vectorizes the faulty runs of
arch- and rtl-tier campaigns (``repro.batch``): N runs execute as one
numpy pass with bit-identical per-fault classes.  Results are independent of
the worker count, of the lane count and of interruption/resume, and
per-fault classes are independent of ``dead`` pruning -- see DESIGN.md.

Campaigns run supervised: a crashed or hung worker is respawned and its
batch retried; a fault that keeps killing workers is quarantined after
``--retries`` attempts (recorded in the store's ``incidents.jsonl``)
and the campaign completes *degraded* instead of dying.  The first
SIGINT/SIGTERM drains in-flight faults and flushes the store so
``--resume`` continues exactly where the run stopped (exit status 130);
a second signal hard-kills.  See DESIGN.md's "Failure model & recovery
semantics".
"""

import argparse
import sys

#: Shared text for the --jobs flag (also referenced from README.md).
JOBS_HELP = (
    "worker processes per campaign's faulty-run phase "
    "(default: one per CPU; 1 = serial, deterministic baseline; "
    "results are identical for any value)"
)

STORE_HELP = (
    "root directory for on-disk campaign stores (one subdirectory per "
    "series: manifest + append-only records, flushed per fault; fresh "
    "stores use the compact binary format -- see --store-format)"
)

STORE_FORMAT_HELP = (
    "record format for fresh stores: 'binary' (default; bitpacked "
    "records.bin + strings.dat, mmap-queried) or 'jsonl' (one JSON "
    "object per fault, human-greppable).  Existing stores keep their "
    "format; `repro-study store <dir> --export jsonl` converts"
)

RESUME_HELP = (
    "load faults already completed in --store instead of re-running "
    "them; the merged result is bit-identical to an uninterrupted run"
)

LANES_HELP = (
    "vectorized fault lanes per campaign (repro.batch): N > 1 executes "
    "N faulty runs of the arch or rtl tier as one numpy pass; "
    "per-fault classes are bit-identical to the scalar path.  Rejected "
    "for scenarios targeting non-batchable levels (uarch)"
)

RETRIES_HELP = (
    "failed-batch attempts per fault before quarantine (default: 2): a "
    "fault whose batch crashes, hangs past its deadline or raises this "
    "many times is recorded as an incident in the store's "
    "incidents.jsonl sidecar and the campaign completes degraded; "
    "every other fault's class is unaffected"
)

PRUNE_HELP = (
    "fault pruning: 'dead' (default) classifies faults whose bit is "
    "overwritten before its next read as Masked without simulating "
    "them (repro.prune, golden access trace) -- per-fault classes are "
    "identical to 'off', only cheaper; 'group' additionally collapses "
    "faults sharing a live interval onto one representative "
    "(approximate windows, opt-in); 'static' proves the same "
    "dead-interval verdicts from dataflow analysis of the program "
    "text alone (repro.staticcheck, no access trace captured; arch "
    "and rtl tiers -- elsewhere every fault simulates)"
)

PRUNE_CHOICES = ("off", "dead", "group", "static")

_EPILOGS = {
    "run": """\
Runs a scenario file (TOML/JSON) or a built-in preset by name.  The
scenario declares targets (levels x workloads x structures x modes),
the fault budget, execution knobs and optional sweep axes; `--set`
overrides any spec key from the command line.  Output: each cell's
summary table (plus the preset's figure/headline rendering when the
scenario carries a [present] block); `--csv` exports the ResultSet.

examples:
  repro-study run fig1 --set faults.samples=100
  repro-study run sweep.toml --set sweep.prune=off,dead --csv out.csv
  repro-study run sweep-smoke --set execution.store=runs/smoke""",
    "list": """\
Discovery for scenario authors: every value a spec can target --
registered abstraction levels, their observation modes and injectable
structures, workloads, sweepable axes and built-in presets.""",
    "table1": """\
Renders Table I: the Cortex-A9 configuration used at both abstraction
levels (pipeline geometry, cache organisation, predictor).  Static --
runs no simulation.""",
    "table2": """\
Renders Table II: simulation throughput per framework (RT level with
signal tracing vs microarchitecture level), the paper's 198.6x-style
comparison.  Runs one golden simulation per workload and level.

examples:
  repro-study table2 --workloads sha,fft
  repro-study table2 --no-trace     # untraced RTL throughput""",
    "fig1": """\
Regenerates Figure 1: register-file unsafeness at the core-pinout
observation point, 20 kcycle (scaled) window -- GeFIN vs RTL vs
GeFIN-no-timer.  Loads the committed preset scenario
src/repro/scenario/presets/fig1.toml.

examples:
  repro-study fig1 --samples 100 --jobs 4
  REPRO_SFI_SAMPLES=200 repro-study fig1 --workloads sha""",
    "fig2": """\
Regenerates Figure 2: L1 data-cache unsafeness at the core pinout,
windowed; the RTL series uses the paper's inject-near-consumption
acceleration (SS IV-B).  Preset: presets/fig2.toml.""",
    "fig3": """\
Regenerates Figure 3: L1D AVF with the software observation point
(program-output comparison, run to completion) on the short workloads
the paper's RTL flow can afford.  Preset: presets/fig3.toml.""",
    "headline": """\
Reproduces the abstract's headline numbers: the cross-level unsafeness
deltas for the register file (from Fig. 1) and the L1D (from Fig. 3),
plus a wall-clock accounting of the campaign executor (speedup vs the
estimated serial time when --jobs > 1).  Preset: presets/headline.toml.""",
    "golden": """\
One fault-free run of a workload; prints cycles, instructions, cache
and predictor statistics and the program output.  Useful to sanity-check
a workload/toolchain/simulator combination before a campaign.  The
arch level (the emulator tier) is the cheapest pre-run path: no
pipeline or cache model, cycle counts are an instruction-count proxy.

examples:
  repro-study golden sha --level rtl
  repro-study golden sha --level arch""",
    "store": """\
Summarizes one or more on-disk campaign stores (written by campaign
subcommands with --store): per-store completion, class tallies and the
recorded provenance.  Reads manifests and intact records only -- a
store whose campaign was killed mid-fault is still summarized.  Binary
stores (format 2, the default) are tallied straight off the mmap;
JSONL stores (format 1) are parsed.  `--export jsonl` prints one
store's records as JSONL on stdout -- the debug view of a binary store.

examples:
  repro-study fig1 --samples 100 --store runs/fig1 --jobs 4
  repro-study store runs/fig1/*
  repro-study store runs/fig1/uarch-sha-regfile-pinout --export jsonl""",
    "staticcheck": """\
Lints workload binaries with the static dataflow engine
(repro.staticcheck): registers read before any path defines them,
blocks unreachable from the entry point, and stores no path ever
reads.  Known-intentional findings (the calling-convention prologue
pushes) are waived inline and marked; anything unwaived fails the
command (exit 1), which makes it a CI gate over the workload registry.
Static -- assembles each workload, runs no simulation.

examples:
  repro-study staticcheck --all
  repro-study staticcheck stringsearch""",
}


def _positive_jobs(text):
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive worker count, got {value}"
        )
    return value


def _positive_retries(text):
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive attempt count, got {value}"
        )
    return value


def _parse_workloads(text):
    from repro.workloads.registry import WORKLOAD_NAMES

    if not text:
        return WORKLOAD_NAMES
    names = tuple(name.strip() for name in text.split(",") if name.strip())
    unknown = [n for n in names if n not in WORKLOAD_NAMES]
    if unknown:
        raise SystemExit(f"unknown workloads: {unknown}")
    return names


# ----------------------------------------------------------------------
# scenario plumbing
# ----------------------------------------------------------------------

def _resolve_scenario(ref):
    """A scenario argument: a file path (has a suffix or a separator)
    or a preset name."""
    import pathlib

    from repro.scenario.presets import preset_path

    path = pathlib.Path(ref)
    if path.suffix or "/" in ref or path.exists():
        return path
    return preset_path(ref)


def _progress_cell(done, total, cell, _result):
    print(f"  [{done}/{total}] {cell.label()} done", file=sys.stderr)


def _run_scenario(spec):
    """Print the run header, execute the grid, return the ResultSet."""
    from repro.scenario.runner import ScenarioRunner

    print(f"# {spec.describe()}", file=sys.stderr)
    resultset = ScenarioRunner(spec, progress=_progress_cell).run()
    _warn_degraded(resultset)
    return resultset


def _warn_degraded(resultset):
    """One stderr line per degraded campaign: quarantined faults are
    excluded from the statistics, which the tables alone don't shout."""
    for cell, result in resultset:
        if getattr(result, "degraded", False):
            print(f"# DEGRADED {cell.label()}: "
                  f"{len(result.incidents)} fault(s) quarantined "
                  f"(see incidents.jsonl in the cell's store)",
                  file=sys.stderr)


def _render_headline(spec, resultset):
    """The headline preset's rendering: one cross-level comparison
    table per [present.comparisons] entry, then the wall-clock
    accounting over every campaign in [present.series] order --
    the historical `headline` output, reproduced from the ResultSet."""
    from repro.analysis.compare import CrossLevelComparison
    from repro.analysis.report import render_table, speedup_table

    for comp in spec.present.get("comparisons", []):
        comparison = CrossLevelComparison(comp["structure"],
                                          comp.get("mode", ""))
        gefin = resultset.where(**comp["gefin"])
        rtl = resultset.where(**comp["rtl"])
        for cell, gefin_result in gefin:
            rtl_result = rtl.where(workload=cell.workload).one()
            comparison.add_results(gefin_result, rtl_result)
        print(render_table(
            ("workload", "GeFIN", "RTL", "delta (pp)", "delta (rel)"),
            comparison.rows(),
            title=f"Cross-level delta: {comp['name']}",
        ))
        print()
    campaigns = [
        result
        for series in spec.present.get("series", [])
        for _, result in resultset.where(**{
            axis: series[axis]
            for axis in ("level", "mode", "structure") if axis in series
        })
    ]
    print(speedup_table(
        campaigns,
        title=f"Campaign wall clock (jobs={spec.jobs or 'auto'})",
    ))


def _render_table2(spec):
    """The table2 preset renders through the dedicated throughput
    measurement (paired traced-RTL vs GeFIN golden runs), not the
    campaign grid."""
    from repro.core.tables import render_table2, table2_rows

    rows, average = table2_rows(
        spec.workloads, rtl_traced=spec.present.get("rtl_traced", True))
    print(render_table2(rows, average))


def _render_scenario(spec, resultset):
    """Dispatch on the spec's [present] block; always end with the
    per-cell table for sweeps/plain scenarios."""
    kind = spec.present.get("kind")
    if kind == "figure":
        from repro.core.figures import chart_from_resultset

        print(chart_from_resultset(resultset, spec.present))
    elif kind == "headline":
        _render_headline(spec, resultset)
    else:
        print(resultset.table(
            title=spec.title or f"Scenario: {spec.name}"))


def _run_flag_overrides(args):
    """The run subcommand's convenience flags as --set pairs (applied
    before --set, so an explicit --set wins)."""
    overrides = []
    if args.jobs is not None:
        overrides.append(f"execution.jobs={args.jobs}")
    if args.lanes is not None:
        overrides.append(f"execution.lanes={args.lanes}")
    if args.prune is not None:
        overrides.append(f"execution.prune={args.prune}")
    if args.retries is not None:
        overrides.append(f"execution.retries={args.retries}")
    if args.store is not None:
        # pre-split tuple: the path must reach the spec verbatim, not
        # through TOML-scalar coercion (see parse_overrides)
        overrides.append((("execution", "store"), args.store))
    if getattr(args, "store_format", None) is not None:
        overrides.append(f"execution.store_format={args.store_format}")
    if args.resume:
        overrides.append("execution.resume=true")
    return overrides


def _cmd_run(args):
    from repro.scenario.spec import load_scenario

    path = _resolve_scenario(args.scenario)
    spec = load_scenario(
        path, overrides=_run_flag_overrides(args) + (args.set or []))
    if spec.present.get("kind") == "table2":
        if args.csv:
            raise SystemExit(
                "repro-study: --csv is not supported for table2-kind "
                "scenarios (throughput is measured outside the "
                "campaign grid)")
        print("# table2 scenario: paired golden throughput runs; "
              "faults/execution knobs do not apply", file=sys.stderr)
        _render_table2(spec)
        return
    resultset = _run_scenario(spec)
    _render_scenario(spec, resultset)
    if args.csv:
        import pathlib

        out = pathlib.Path(args.csv)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(resultset.to_csv())
        print(f"# wrote {len(resultset)} cells to {out}",
              file=sys.stderr)


def _legacy_overrides(args):
    """Map the historical figure-subcommand flags onto --set pairs."""
    overrides = [f"execution.jobs={args.jobs}",
                 f"execution.prune={args.prune}",
                 f"faults.seed={args.seed}"]
    if args.lanes is not None and args.lanes != 1:
        overrides.append(f"execution.lanes={args.lanes}")
    if getattr(args, "retries", None) is not None:
        overrides.append(f"execution.retries={args.retries}")
    if args.workloads:
        overrides.append("targets.workloads="
                         + ",".join(_parse_workloads(args.workloads)))
    if args.samples is not None:
        overrides.append(f"faults.samples={args.samples}")
    if args.store:
        overrides.append((("execution", "store"), args.store))
        if getattr(args, "store_format", None) is not None:
            overrides.append(
                f"execution.store_format={args.store_format}")
        if args.resume:
            overrides.append("execution.resume=true")
    return overrides


def _load_legacy_preset(name, args):
    from repro.scenario.presets import load_preset

    if args.resume and not args.store:
        raise SystemExit("--resume requires --store")
    return load_preset(name, overrides=_legacy_overrides(args))


# ----------------------------------------------------------------------
# subcommand handlers
# ----------------------------------------------------------------------

def _cmd_list(_args):
    from repro.scenario.presets import preset_names, preset_path
    from repro.scenario.spec import SWEEP_AXES, load_mapping
    from repro.sim import registry
    from repro.staticcheck import static_prune_available
    from repro.workloads.registry import (
        WORKLOAD_DESCRIPTIONS,
        WORKLOAD_NAMES,
    )

    print("abstraction levels (targets.levels / sweep.level):")
    for spec in registry.levels():
        sim_class = spec.simulator_class()
        batchable = getattr(sim_class, "BATCHABLE", False)
        tag = "  [lane-batchable]" if batchable else ""
        if static_prune_available(spec.name):
            tag += "  [static-prunable]"
        print(f"  {spec.name:<14} {spec.description}{tag}")
        modes = sorted(spec.frontend_class().MODES)
        structures = sorted(sim_class.INJECTABLE)
        print(f"  {'':<14} modes: {', '.join(modes)}")
        print(f"  {'':<14} structures: {', '.join(structures)}")
    print()
    print("workloads (targets.workloads, or \"all\"):")
    for name in WORKLOAD_NAMES:
        print(f"  {name:<14} {WORKLOAD_DESCRIPTIONS[name]}")
    print()
    print("presets (repro-study run <name>):")
    for name in preset_names():
        meta = load_mapping(preset_path(name)).get("scenario", {})
        print(f"  {name:<14} {meta.get('title', '')}")
    print()
    print(f"sweep axes ([sweep]): {', '.join(SWEEP_AXES)}")


def _cmd_table1(_args):
    from repro.core.tables import render_table1

    print(render_table1())


def _cmd_table2(args):
    from repro.scenario.presets import load_preset

    overrides = []
    if args.workloads:
        overrides.append("targets.workloads="
                         + ",".join(_parse_workloads(args.workloads)))
    if args.no_trace:
        overrides.append("present.rtl_traced=false")
    _render_table2(load_preset("table2", overrides=overrides))


def _cmd_fig(args, which):
    from repro.core.figures import chart_from_resultset

    spec = _load_legacy_preset(f"fig{which}", args)
    resultset = _run_scenario(spec)
    print(chart_from_resultset(resultset, spec.present))


def _cmd_headline(args):
    spec = _load_legacy_preset("headline", args)
    resultset = _run_scenario(spec)
    _render_headline(spec, resultset)


def _cmd_store(args):
    if args.export:
        from repro.injection.store import CampaignStore

        if len(args.stores) != 1:
            raise SystemExit(
                "repro-study: --export takes exactly one store "
                "directory")
        store = CampaignStore(args.stores[0])
        store.manifest()  # fail early on a non-store path
        for line in store.export_jsonl():
            print(line)
        return
    from repro.analysis.report import store_table

    print(store_table(args.stores, title="Campaign stores"))


def _cmd_staticcheck(args):
    from repro.staticcheck import lint_workload
    from repro.workloads.registry import WORKLOAD_NAMES

    if args.workload is None and not args.all:
        raise SystemExit(
            "repro-study: staticcheck needs a workload name or --all")
    names = WORKLOAD_NAMES if args.all else (args.workload,)
    unwaived = 0
    for name in names:
        findings = lint_workload(name)
        shown = findings if args.waived else \
            [f for f in findings if not f.waived]
        tally = (f"{len(findings)} finding(s), "
                 f"{sum(1 for f in findings if f.waived)} waived")
        print(f"{name}: {tally}" if findings else f"{name}: clean")
        for finding in shown:
            tag = " [waived]" if finding.waived else ""
            print(f"  {finding.addr:#06x} {finding.kind} "
                  f"{finding.subject}: {finding.message}{tag}")
        unwaived += sum(1 for f in findings if not f.waived)
    if unwaived:
        raise SystemExit(
            f"repro-study: {unwaived} unwaived finding(s)")


def _cmd_golden(args):
    from repro.sim import registry

    front = registry.create_frontend(args.level, args.workload)
    sim = front.golden_run()
    stats = sim.stats()
    print(f"workload      : {args.workload} ({args.level})")
    print(f"status        : exited={sim.exited} code={sim.exit_code}")
    print(f"cycles        : {stats['cycles']}")
    print(f"instructions  : {stats['instructions']} (IPC "
          f"{stats['ipc']:.2f})")
    print(f"L1D miss/hit  : {stats['l1d_misses']}/{stats['l1d_hits']}")
    print(f"mispredicts   : {stats['mispredicts']}")
    print(f"output        : {sim.output!r}")


def _add_parser(sub, name, help_text):
    return sub.add_parser(
        name,
        help=help_text,
        description=help_text,
        epilog=_EPILOGS[name],
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )


def main(argv=None):
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro-study",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--version", action="version",
                        version=f"repro-study {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)
    p_run = _add_parser(sub, "run",
                        "run a declarative scenario file or preset")
    p_run.add_argument("scenario",
                       help="scenario file (.toml/.json) or preset name "
                            "(see `repro-study list`)")
    p_run.add_argument("--set", action="append", metavar="KEY=VALUE",
                       help="override a spec key (dotted path), e.g. "
                            "--set faults.samples=100 "
                            "--set sweep.prune=off,dead")
    p_run.add_argument("--csv", default=None, metavar="PATH",
                       help="write the ResultSet summary CSV "
                            "(one row per cell) to PATH")
    p_run.add_argument("--jobs", type=_positive_jobs, default=None,
                       help=JOBS_HELP + " (default: the spec's "
                            "execution.jobs)")
    p_run.add_argument("--lanes", type=_positive_jobs, default=None,
                       help=LANES_HELP + " (default: the spec's "
                            "execution.lanes)")
    p_run.add_argument("--prune", choices=PRUNE_CHOICES,
                       default=None, help=PRUNE_HELP)
    p_run.add_argument("--retries", type=_positive_retries, default=None,
                       help=RETRIES_HELP)
    p_run.add_argument("--store", default=None, help=STORE_HELP)
    p_run.add_argument("--store-format", choices=("binary", "jsonl"),
                       default=None, help=STORE_FORMAT_HELP)
    p_run.add_argument("--resume", action="store_true", help=RESUME_HELP)
    _add_parser(sub, "list",
                "valid scenario spec values (levels, workloads, ...)")
    _add_parser(sub, "table1", "Table I: simulated CPU configuration")
    p_table2 = _add_parser(
        sub, "table2", "Table II: per-framework simulation throughput")
    p_table2.add_argument("--workloads", default="",
                          help="comma-separated workload subset "
                               "(default: all)")
    p_table2.add_argument("--no-trace", action="store_true",
                          help="disable RTL signal tracing (faster, "
                               "less NCSIM-like)")
    fig_help = {
        "fig1": "Figure 1: register-file unsafeness, pinout OP",
        "fig2": "Figure 2: L1D unsafeness, pinout OP",
        "fig3": "Figure 3: L1D AVF, software OP",
        "headline": "the abstract's cross-level deltas + wall clock",
    }
    from repro.injection.executor import default_jobs

    for name in ("fig1", "fig2", "fig3", "headline"):
        p = _add_parser(sub, name, fig_help[name])
        p.add_argument("--workloads", default="",
                       help="comma-separated workload subset "
                            "(default: all)")
        p.add_argument("--samples", "--faults", type=int, default=None,
                       help="faults per (workload, structure, mode) "
                            "series (default: REPRO_SFI_SAMPLES or 40)")
        p.add_argument("--seed", type=int, default=2017,
                       help="campaign RNG seed (default: 2017)")
        p.add_argument("--jobs", type=_positive_jobs,
                       default=default_jobs(), help=JOBS_HELP)
        p.add_argument("--lanes", type=_positive_jobs, default=None,
                       help=LANES_HELP)
        p.add_argument("--prune", choices=PRUNE_CHOICES,
                       default="dead", help=PRUNE_HELP)
        p.add_argument("--retries", type=_positive_retries, default=None,
                       help=RETRIES_HELP)
        p.add_argument("--store", default=None, help=STORE_HELP)
        p.add_argument("--store-format", choices=("binary", "jsonl"),
                       default=None, help=STORE_FORMAT_HELP)
        p.add_argument("--resume", action="store_true", help=RESUME_HELP)
    p_store = _add_parser(sub, "store",
                          "summarize on-disk campaign stores")
    p_store.add_argument("stores", nargs="+",
                         help="store directories (manifest + binary or "
                              "JSONL records)")
    p_store.add_argument("--export", choices=("jsonl",), default=None,
                         help="print one store's records as JSONL on "
                              "stdout (debug export; exactly one "
                              "store directory)")
    from repro.sim.registry import level_names

    p_golden = _add_parser(sub, "golden",
                           "one fault-free run of a workload")
    p_golden.add_argument("workload", help="workload name (see README.md)")
    p_golden.add_argument("--level", choices=level_names(),
                          default="uarch",
                          help="abstraction level to simulate at "
                               "(default: uarch)")
    p_static = _add_parser(sub, "staticcheck",
                           "lint workload binaries with the static "
                           "dataflow engine")
    p_static.add_argument("workload", nargs="?", default=None,
                          help="workload name (see `repro-study list`)")
    p_static.add_argument("--all", action="store_true",
                          help="lint every registered workload")
    p_static.add_argument("--waived", action="store_true",
                          help="also print findings covered by the "
                               "inline waiver list")
    args = parser.parse_args(argv)
    from repro.errors import CampaignInterrupted, ExecutionError
    from repro.injection.store import StoreError
    from repro.scenario.spec import ScenarioError

    try:
        if args.command == "run":
            _cmd_run(args)
        elif args.command == "list":
            _cmd_list(args)
        elif args.command == "table1":
            _cmd_table1(args)
        elif args.command == "table2":
            _cmd_table2(args)
        elif args.command == "fig1":
            _cmd_fig(args, 1)
        elif args.command == "fig2":
            _cmd_fig(args, 2)
        elif args.command == "fig3":
            _cmd_fig(args, 3)
        elif args.command == "headline":
            _cmd_headline(args)
        elif args.command == "golden":
            _cmd_golden(args)
        elif args.command == "store":
            _cmd_store(args)
        elif args.command == "staticcheck":
            _cmd_staticcheck(args)
    except (StoreError, ScenarioError, ExecutionError) as exc:
        # Spec, store and execution-knob problems (bad field, unknown
        # preset, refusal to overwrite completed records, identity
        # mismatch, misspelled start method) are user-facing
        # conditions, not tracebacks.
        raise SystemExit(f"repro-study: {exc}")
    except CampaignInterrupted as exc:
        # Graceful shutdown: the store (if any) was flushed and is
        # resumable.  128 + SIGINT, the conventional interrupt status.
        print(f"repro-study: interrupted -- {exc}", file=sys.stderr)
        return 130
    return 0


if __name__ == "__main__":
    sys.exit(main())
