"""Command-line entry point: ``repro-study``.

Subcommands regenerate the paper's artifacts from a terminal::

    repro-study table1
    repro-study table2 [--workloads sha,fft] [--no-trace]
    repro-study fig1|fig2|fig3 [--samples N] [--workloads ...] [--jobs N]
    repro-study headline [--samples N] [--jobs N]
    repro-study golden <workload> [--level arch|uarch|rtl]
    repro-study store <dir> [<dir> ...]

``--level`` choices come from the backend registry
(``repro.sim.registry``): the architectural emulator (``arch``), the
microarchitectural model (``uarch``) and the RT-level model (``rtl``).

Campaign-running subcommands (``fig1``..``fig3``, ``headline``) accept
``--jobs`` to fan the faulty runs of each campaign out over a process
pool (default: one worker per CPU; ``--jobs 1`` forces the serial
path), ``--prune {off,dead,group}`` to control lifetime-aware fault
pruning (default ``dead``: provably-Masked faults are classified from
the golden access trace without simulation), plus ``--store DIR`` to
persist every completed fault to an on-disk campaign store and
``--resume`` to continue an interrupted run without repeating finished
faults.  Results are independent of the worker count and of
interruption/resume, and per-fault classes are independent of ``dead``
pruning -- see DESIGN.md.
"""

import argparse
import sys

#: Shared text for the --jobs flag (also referenced from README.md).
JOBS_HELP = (
    "worker processes per campaign's faulty-run phase "
    "(default: one per CPU; 1 = serial, deterministic baseline; "
    "results are identical for any value)"
)

STORE_HELP = (
    "root directory for on-disk campaign stores (one subdirectory per "
    "series: manifest + append-only JSONL records, flushed per fault)"
)

RESUME_HELP = (
    "load faults already completed in --store instead of re-running "
    "them; the merged result is bit-identical to an uninterrupted run"
)

PRUNE_HELP = (
    "lifetime-aware fault pruning (repro.prune): 'dead' (default) "
    "classifies faults whose bit is overwritten before its next read "
    "as Masked without simulating them -- per-fault classes are "
    "identical to 'off', only cheaper; 'group' additionally collapses "
    "faults sharing a live interval onto one representative "
    "(approximate windows, opt-in)"
)

_EPILOGS = {
    "table1": """\
Renders Table I: the Cortex-A9 configuration used at both abstraction
levels (pipeline geometry, cache organisation, predictor).  Static --
runs no simulation.""",
    "table2": """\
Renders Table II: simulation throughput per framework (RT level with
signal tracing vs microarchitecture level), the paper's 198.6x-style
comparison.  Runs one golden simulation per workload and level.

examples:
  repro-study table2 --workloads sha,fft
  repro-study table2 --no-trace     # untraced RTL throughput""",
    "fig1": """\
Regenerates Figure 1: register-file unsafeness at the core-pinout
observation point, 20 kcycle (scaled) window -- GeFIN vs RTL vs
GeFIN-no-timer.

examples:
  repro-study fig1 --samples 100 --jobs 4
  REPRO_SFI_SAMPLES=200 repro-study fig1 --workloads sha""",
    "fig2": """\
Regenerates Figure 2: L1 data-cache unsafeness at the core pinout,
windowed; the RTL series uses the paper's inject-near-consumption
acceleration (SS IV-B).""",
    "fig3": """\
Regenerates Figure 3: L1D AVF with the software observation point
(program-output comparison, run to completion) on the short workloads
the paper's RTL flow can afford.""",
    "headline": """\
Reproduces the abstract's headline numbers: the cross-level unsafeness
deltas for the register file (from Fig. 1) and the L1D (from Fig. 3),
plus a wall-clock accounting of the campaign executor (speedup vs the
estimated serial time when --jobs > 1).""",
    "golden": """\
One fault-free run of a workload; prints cycles, instructions, cache
and predictor statistics and the program output.  Useful to sanity-check
a workload/toolchain/simulator combination before a campaign.  The
arch level (the emulator tier) is the cheapest pre-run path: no
pipeline or cache model, cycle counts are an instruction-count proxy.

examples:
  repro-study golden sha --level rtl
  repro-study golden sha --level arch""",
    "store": """\
Summarizes one or more on-disk campaign stores (written by the figure
subcommands with --store): per-store completion, class tallies and the
recorded provenance.  Reads manifests and intact records only -- a
store whose campaign was killed mid-fault is still summarized.

examples:
  repro-study fig1 --samples 100 --store runs/fig1 --jobs 4
  repro-study store runs/fig1/*""",
}


def _positive_jobs(text):
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive worker count, got {value}"
        )
    return value


def _parse_workloads(text):
    from repro.workloads.registry import WORKLOAD_NAMES

    if not text:
        return WORKLOAD_NAMES
    names = tuple(name.strip() for name in text.split(",") if name.strip())
    unknown = [n for n in names if n not in WORKLOAD_NAMES]
    if unknown:
        raise SystemExit(f"unknown workloads: {unknown}")
    return names


def _cmd_table1(_args):
    from repro.core.tables import render_table1

    print(render_table1())


def _cmd_table2(args):
    from repro.core.tables import render_table2, table2_rows

    rows, average = table2_rows(
        _parse_workloads(args.workloads), rtl_traced=not args.no_trace
    )
    print(render_table2(rows, average))


def _make_study(args):
    from repro.core.study import CrossLevelStudy, StudyConfig

    if args.resume and not args.store:
        raise SystemExit("--resume requires --store")
    config = StudyConfig(
        workloads=_parse_workloads(args.workloads),
        samples=args.samples,
        seed=args.seed,
        jobs=args.jobs,
        store=args.store,
        resume=args.resume,
        prune=args.prune,
    )
    # The header fully identifies the run's configuration (including
    # the parallel knobs), so logged outputs are reproducible.
    print(f"# {config.describe()}", file=sys.stderr)
    return CrossLevelStudy(config)


def _progress(stage, workload):
    print(f"  [{stage}] {workload} done", file=sys.stderr)


def _cmd_fig(args, which):
    from repro.core import figures

    study = _make_study(args)
    if which == 1:
        results = study.figure1(progress=_progress)
        print(figures.figure1_chart(results))
    elif which == 2:
        results = study.figure2(progress=_progress)
        print(figures.figure2_chart(results))
    else:
        results = study.figure3(progress=_progress)
        print(figures.figure3_chart(results))


def _cmd_headline(args):
    from repro.analysis.report import render_table, speedup_table

    study = _make_study(args)
    fig1 = study.figure1(progress=_progress)
    fig3 = study.figure3(progress=_progress)
    headline = study.headline(fig1=fig1, fig3=fig3)
    for name, comparison in headline.items():
        print(render_table(
            ("workload", "GeFIN", "RTL", "delta (pp)", "delta (rel)"),
            comparison.rows(),
            title=f"Cross-level delta: {name}",
        ))
        print()
    campaigns = [
        result
        for series in (fig1, fig3)
        for by_workload in series.values()
        for result in by_workload.values()
    ]
    print(speedup_table(
        campaigns,
        title=f"Campaign wall clock (jobs={args.jobs or 'auto'})",
    ))


def _cmd_store(args):
    from repro.analysis.report import store_table

    print(store_table(args.stores, title="Campaign stores"))


def _cmd_golden(args):
    from repro.sim import registry

    front = registry.create_frontend(args.level, args.workload)
    sim = front.golden_run()
    stats = sim.stats()
    print(f"workload      : {args.workload} ({args.level})")
    print(f"status        : exited={sim.exited} code={sim.exit_code}")
    print(f"cycles        : {stats['cycles']}")
    print(f"instructions  : {stats['instructions']} (IPC "
          f"{stats['ipc']:.2f})")
    print(f"L1D miss/hit  : {stats['l1d_misses']}/{stats['l1d_hits']}")
    print(f"mispredicts   : {stats['mispredicts']}")
    print(f"output        : {sim.output!r}")


def _add_parser(sub, name, help_text):
    return sub.add_parser(
        name,
        help=help_text,
        description=help_text,
        epilog=_EPILOGS[name],
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro-study",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)
    _add_parser(sub, "table1", "Table I: simulated CPU configuration")
    p_table2 = _add_parser(
        sub, "table2", "Table II: per-framework simulation throughput")
    p_table2.add_argument("--workloads", default="",
                          help="comma-separated workload subset "
                               "(default: all)")
    p_table2.add_argument("--no-trace", action="store_true",
                          help="disable RTL signal tracing (faster, "
                               "less NCSIM-like)")
    fig_help = {
        "fig1": "Figure 1: register-file unsafeness, pinout OP",
        "fig2": "Figure 2: L1D unsafeness, pinout OP",
        "fig3": "Figure 3: L1D AVF, software OP",
        "headline": "the abstract's cross-level deltas + wall clock",
    }
    from repro.injection.executor import default_jobs

    for name in ("fig1", "fig2", "fig3", "headline"):
        p = _add_parser(sub, name, fig_help[name])
        p.add_argument("--workloads", default="",
                       help="comma-separated workload subset "
                            "(default: all)")
        p.add_argument("--samples", "--faults", type=int, default=None,
                       help="faults per (workload, structure, mode) "
                            "series (default: REPRO_SFI_SAMPLES or 40)")
        p.add_argument("--seed", type=int, default=2017,
                       help="campaign RNG seed (default: 2017)")
        p.add_argument("--jobs", type=_positive_jobs,
                       default=default_jobs(), help=JOBS_HELP)
        p.add_argument("--prune", choices=("off", "dead", "group"),
                       default="dead", help=PRUNE_HELP)
        p.add_argument("--store", default=None, help=STORE_HELP)
        p.add_argument("--resume", action="store_true", help=RESUME_HELP)
    p_store = _add_parser(sub, "store",
                          "summarize on-disk campaign stores")
    p_store.add_argument("stores", nargs="+",
                         help="store directories (manifest + JSONL)")
    from repro.sim.registry import level_names

    p_golden = _add_parser(sub, "golden",
                           "one fault-free run of a workload")
    p_golden.add_argument("workload", help="workload name (see README.md)")
    p_golden.add_argument("--level", choices=level_names(),
                          default="uarch",
                          help="abstraction level to simulate at "
                               "(default: uarch)")
    args = parser.parse_args(argv)
    from repro.injection.store import StoreError

    try:
        if args.command == "table1":
            _cmd_table1(args)
        elif args.command == "table2":
            _cmd_table2(args)
        elif args.command == "fig1":
            _cmd_fig(args, 1)
        elif args.command == "fig2":
            _cmd_fig(args, 2)
        elif args.command == "fig3":
            _cmd_fig(args, 3)
        elif args.command == "headline":
            _cmd_headline(args)
        elif args.command == "golden":
            _cmd_golden(args)
        elif args.command == "store":
            _cmd_store(args)
    except StoreError as exc:
        # Store problems (not a store, refusal to overwrite completed
        # records, identity mismatch) are user-facing conditions, not
        # tracebacks.
        raise SystemExit(f"repro-study: {exc}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
