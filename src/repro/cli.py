"""Command-line entry point: ``repro-study``.

Subcommands regenerate the paper's artifacts from a terminal::

    repro-study table1
    repro-study table2 [--workloads sha,fft] [--no-trace]
    repro-study fig1|fig2|fig3 [--samples N] [--workloads ...]
    repro-study headline [--samples N]
    repro-study golden <workload> [--level rtl|uarch]
"""

import argparse
import sys


def _parse_workloads(text):
    from repro.workloads.registry import WORKLOAD_NAMES

    if not text:
        return WORKLOAD_NAMES
    names = tuple(name.strip() for name in text.split(",") if name.strip())
    unknown = [n for n in names if n not in WORKLOAD_NAMES]
    if unknown:
        raise SystemExit(f"unknown workloads: {unknown}")
    return names


def _cmd_table1(_args):
    from repro.core.tables import render_table1

    print(render_table1())


def _cmd_table2(args):
    from repro.core.tables import render_table2, table2_rows

    rows, average = table2_rows(
        _parse_workloads(args.workloads), rtl_traced=not args.no_trace
    )
    print(render_table2(rows, average))


def _make_study(args):
    from repro.core.study import CrossLevelStudy, StudyConfig

    config = StudyConfig(
        workloads=_parse_workloads(args.workloads),
        samples=args.samples,
        seed=args.seed,
    )
    return CrossLevelStudy(config)


def _progress(stage, workload):
    print(f"  [{stage}] {workload} done", file=sys.stderr)


def _cmd_fig(args, which):
    from repro.core import figures

    study = _make_study(args)
    if which == 1:
        results = study.figure1(progress=_progress)
        print(figures.figure1_chart(results))
    elif which == 2:
        results = study.figure2(progress=_progress)
        print(figures.figure2_chart(results))
    else:
        results = study.figure3(progress=_progress)
        print(figures.figure3_chart(results))


def _cmd_headline(args):
    from repro.analysis.report import render_table

    study = _make_study(args)
    headline = study.headline()
    for name, comparison in headline.items():
        print(render_table(
            ("workload", "GeFIN", "RTL", "delta (pp)", "delta (rel)"),
            comparison.rows(),
            title=f"Cross-level delta: {name}",
        ))
        print()


def _cmd_golden(args):
    if args.level == "rtl":
        from repro.injection.safety_verifier import SafetyVerifier

        front = SafetyVerifier(args.workload)
    else:
        from repro.injection.gefin import GeFIN

        front = GeFIN(args.workload)
    sim = front.golden_run()
    stats = sim.stats()
    print(f"workload      : {args.workload} ({args.level})")
    print(f"status        : exited={sim.exited} code={sim.exit_code}")
    print(f"cycles        : {stats['cycles']}")
    print(f"instructions  : {stats['instructions']} (IPC "
          f"{stats['ipc']:.2f})")
    print(f"L1D miss/hit  : {stats['l1d_misses']}/{stats['l1d_hits']}")
    print(f"mispredicts   : {stats['mispredicts']}")
    print(f"output        : {sim.output!r}")


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro-study",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("table1")
    p_table2 = sub.add_parser("table2")
    p_table2.add_argument("--workloads", default="")
    p_table2.add_argument("--no-trace", action="store_true")
    for name in ("fig1", "fig2", "fig3", "headline"):
        p = sub.add_parser(name)
        p.add_argument("--workloads", default="")
        p.add_argument("--samples", type=int, default=None)
        p.add_argument("--seed", type=int, default=2017)
    p_golden = sub.add_parser("golden")
    p_golden.add_argument("workload")
    p_golden.add_argument("--level", choices=("rtl", "uarch"),
                          default="uarch")
    args = parser.parse_args(argv)
    if args.command == "table1":
        _cmd_table1(args)
    elif args.command == "table2":
        _cmd_table2(args)
    elif args.command == "fig1":
        _cmd_fig(args, 1)
    elif args.command == "fig2":
        _cmd_fig(args, 2)
    elif args.command == "fig3":
        _cmd_fig(args, 3)
    elif args.command == "headline":
        _cmd_headline(args)
    elif args.command == "golden":
        _cmd_golden(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
