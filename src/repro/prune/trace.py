"""Golden-run access traces: per-cell read/write event logs.

A :class:`LifetimeTrace` records, for every *cell* of a registered
structure, the ordered sequence of read and write events the golden run
performed on it.  A cell is the backend's natural write granularity --
one 32-bit register of a register file, one flag bit of the CPSR -- so
an event on a cell covers every fault-target bit inside it: a register
write kills all 32 bits at once, a register read consumes all 32.

Events are stored per cell as one flat list of encoded integers,
``(cycle << 1) | is_write``, appended in execution order.  Cycles are
monotone within a run, so each cell's list is sorted and the
first-event-at-or-after query the pruner needs is a single bisect.
The encoding keeps the trace compact (tens of thousands of small ints
for the paper's workloads) and trivially picklable/snapshottable, which
is what lets checkpoints carry the trace prefix alongside the pinout
(see :meth:`repro.sim.base.SimulatorBase.checkpoint`).

A :class:`RetiredPCTrace` is the far cheaper sibling the *static*
pruner consumes: just the architectural retired-instruction stream as
``(cycle, pc)`` pairs, one bisect to anchor an injection cycle to the
first instruction that retires after it.  Unlike the access trace it is
drain-invariant -- the retired sequence is architectural, identical
across checkpoint cadences -- so it never rides inside checkpoints.
"""

from __future__ import annotations

import bisect

#: One encoded access event: ``(cycle, is_write, position)``.
Event = tuple[int, bool, int]
#: A snapshot of a :class:`LifetimeTrace` (see :meth:`snapshot`).
TraceState = tuple[
    dict[str, dict[int, list[int]]],
    dict[str, int],
    dict[str, "frozenset[int] | None"],
]


class LifetimeTrace:
    """Per-structure, per-cell read/write event log of one golden run."""

    __slots__ = ("_events", "_bits_per_cell", "_reachable")

    def __init__(self) -> None:
        #: structure -> cell -> sorted list of ``(cycle << 1) | write``.
        self._events: dict[str, dict[int, list[int]]] = {}
        #: structure -> fault-target bits covered by one cell.
        self._bits_per_cell: dict[str, int] = {}
        #: structure -> frozenset of cells the machine can ever access,
        #: or None for "all" (see :meth:`register`).
        self._reachable: dict[str, frozenset[int] | None] = {}

    # ------------------------------------------------------------------
    # registration + capture (backend listeners)
    # ------------------------------------------------------------------

    def register(self, structure: str, bits_per_cell: int,
                 reachable_cells: "range | frozenset[int] | None" = None,
                 ) -> None:
        """Declare a traced structure and its cell granularity.

        ``bits_per_cell`` maps a fault-target bit index to its cell
        (``bit // bits_per_cell``): 32 for register files, 1 for the
        per-bit CPSR flags.

        ``reachable_cells``, when given, names the cells the machine
        can *structurally* access at all -- e.g. the RT-level
        register-file macro holds 56 entries but the pipeline only ever
        addresses the 16 architectural ones; faults in the banked/spare
        entries are masked by construction.  ``None`` means every cell
        is reachable.
        """
        if bits_per_cell < 1:
            raise ValueError(f"bits_per_cell must be >= 1, got "
                             f"{bits_per_cell}")
        self._events.setdefault(structure, {})
        self._bits_per_cell[structure] = bits_per_cell
        self._reachable[structure] = (
            None if reachable_cells is None else frozenset(reachable_cells)
        )

    def record(self, structure: str, cell: int, cycle: int,
               write: bool) -> None:
        """Append one event (in execution order; cycles are monotone)."""
        cells = self._events[structure]
        encoded = (cycle << 1) | bool(write)
        try:
            cells[cell].append(encoded)
        except KeyError:
            cells[cell] = [encoded]

    # ------------------------------------------------------------------
    # queries (the pruner)
    # ------------------------------------------------------------------

    def traces(self, structure: str) -> bool:
        """Whether ``structure`` is registered for tracing."""
        return structure in self._bits_per_cell

    def cell_of(self, structure: str, bit: int) -> int:
        """The cell covering fault-target ``bit`` of ``structure``."""
        return bit // self._bits_per_cell[structure]

    def reachable(self, structure: str, cell: int) -> bool:
        """Whether the machine can structurally access ``cell`` at all."""
        cells = self._reachable.get(structure)
        return cells is None or cell in cells

    def next_event(self, structure: str, cell: int,
                   min_cycle: int) -> Event | None:
        """First event on ``cell`` at or after ``min_cycle``.

        Returns ``(cycle, is_write, position)`` -- ``position`` is the
        event's index in the cell's stream, a stable identifier of the
        interval boundary (the equivalence-grouping key) -- or ``None``
        when the golden run never touches the cell again.
        """
        events = self._events[structure].get(cell)
        if not events:
            return None
        pos = bisect.bisect_left(events, min_cycle << 1)
        if pos == len(events):
            return None
        encoded = events[pos]
        return encoded >> 1, bool(encoded & 1), pos

    # ------------------------------------------------------------------
    # introspection (tests, reports)
    # ------------------------------------------------------------------

    def structures(self) -> tuple[str, ...]:
        return tuple(sorted(self._bits_per_cell))

    def cells(self, structure: str) -> tuple[int, ...]:
        """Cells of ``structure`` with at least one event, sorted."""
        return tuple(sorted(self._events.get(structure, ())))

    def events(self, structure: str, cell: int) -> tuple[tuple[int, bool], ...]:
        """Decoded ``(cycle, is_write)`` event stream of one cell."""
        return tuple((e >> 1, bool(e & 1))
                     for e in self._events.get(structure, {}).get(cell, ()))

    def event_count(self) -> int:
        return sum(len(events) for cells in self._events.values()
                   for events in cells.values())

    # ------------------------------------------------------------------
    # snapshot / restore (checkpoint round trips)
    # ------------------------------------------------------------------

    def snapshot(self) -> TraceState:
        return (
            {s: {c: list(ev) for c, ev in cells.items()}
             for s, cells in self._events.items()},
            dict(self._bits_per_cell),
            dict(self._reachable),
        )

    def restore(self, state: TraceState) -> None:
        events, bits, reachable = state
        self._events = {s: {c: list(ev) for c, ev in cells.items()}
                        for s, cells in events.items()}
        self._bits_per_cell = dict(bits)
        self._reachable = dict(reachable)

    def __repr__(self) -> str:
        per = ", ".join(
            f"{s}:{sum(len(e) for e in cells.values())}ev"
            for s, cells in sorted(self._events.items())
        )
        return f"LifetimeTrace({per or 'empty'})"


class RetiredPCTrace:
    """The golden run's retired-instruction stream, ``(cycle, pc)``.

    Backends append in retirement order (cycles are monotone,
    duplicates allowed -- the arch tier retires one instruction per
    stamp, the RT tier may retire a dual-issued pair on one cycle), so
    anchoring an injection cycle to the first subsequent retirement is
    a single bisect over the cycle column.
    """

    __slots__ = ("_cycles", "_pcs")

    def __init__(self) -> None:
        self._cycles: list[int] = []
        self._pcs: list[int] = []

    def record(self, cycle: int, pc: int) -> None:
        """Append one retirement (in execution order)."""
        self._cycles.append(cycle)
        self._pcs.append(pc)

    def anchor(self, min_cycle: int) -> int | None:
        """PC of the first instruction retiring at or after
        ``min_cycle``, or ``None`` when the run has already ended."""
        pos = bisect.bisect_left(self._cycles, min_cycle)
        if pos == len(self._pcs):
            return None
        return self._pcs[pos]

    def entries(self) -> tuple[tuple[int, int], ...]:
        """The full ``(cycle, pc)`` stream (tests, reports)."""
        return tuple(zip(self._cycles, self._pcs))

    def __len__(self) -> int:
        return len(self._pcs)

    def __repr__(self) -> str:
        return f"RetiredPCTrace({len(self._pcs)} retirements)"
