"""Golden-run access traces: per-cell read/write event logs.

A :class:`LifetimeTrace` records, for every *cell* of a registered
structure, the ordered sequence of read and write events the golden run
performed on it.  A cell is the backend's natural write granularity --
one 32-bit register of a register file, one flag bit of the CPSR -- so
an event on a cell covers every fault-target bit inside it: a register
write kills all 32 bits at once, a register read consumes all 32.

Events are stored per cell as one flat list of encoded integers,
``(cycle << 1) | is_write``, appended in execution order.  Cycles are
monotone within a run, so each cell's list is sorted and the
first-event-at-or-after query the pruner needs is a single bisect.
The encoding keeps the trace compact (tens of thousands of small ints
for the paper's workloads) and trivially picklable/snapshottable, which
is what lets checkpoints carry the trace prefix alongside the pinout
(see :meth:`repro.sim.base.SimulatorBase.checkpoint`).
"""

import bisect


class LifetimeTrace:
    """Per-structure, per-cell read/write event log of one golden run."""

    __slots__ = ("_events", "_bits_per_cell", "_reachable")

    def __init__(self):
        #: structure -> cell -> sorted list of ``(cycle << 1) | write``.
        self._events = {}
        #: structure -> fault-target bits covered by one cell.
        self._bits_per_cell = {}
        #: structure -> frozenset of cells the machine can ever access,
        #: or None for "all" (see :meth:`register`).
        self._reachable = {}

    # ------------------------------------------------------------------
    # registration + capture (backend listeners)
    # ------------------------------------------------------------------

    def register(self, structure, bits_per_cell, reachable_cells=None):
        """Declare a traced structure and its cell granularity.

        ``bits_per_cell`` maps a fault-target bit index to its cell
        (``bit // bits_per_cell``): 32 for register files, 1 for the
        per-bit CPSR flags.

        ``reachable_cells``, when given, names the cells the machine
        can *structurally* access at all -- e.g. the RT-level
        register-file macro holds 56 entries but the pipeline only ever
        addresses the 16 architectural ones; faults in the banked/spare
        entries are masked by construction.  ``None`` means every cell
        is reachable.
        """
        if bits_per_cell < 1:
            raise ValueError(f"bits_per_cell must be >= 1, got "
                             f"{bits_per_cell}")
        self._events.setdefault(structure, {})
        self._bits_per_cell[structure] = bits_per_cell
        self._reachable[structure] = (
            None if reachable_cells is None else frozenset(reachable_cells)
        )

    def record(self, structure, cell, cycle, write):
        """Append one event (in execution order; cycles are monotone)."""
        cells = self._events[structure]
        encoded = (cycle << 1) | bool(write)
        try:
            cells[cell].append(encoded)
        except KeyError:
            cells[cell] = [encoded]

    # ------------------------------------------------------------------
    # queries (the pruner)
    # ------------------------------------------------------------------

    def traces(self, structure):
        """Whether ``structure`` is registered for tracing."""
        return structure in self._bits_per_cell

    def cell_of(self, structure, bit):
        """The cell covering fault-target ``bit`` of ``structure``."""
        return bit // self._bits_per_cell[structure]

    def reachable(self, structure, cell):
        """Whether the machine can structurally access ``cell`` at all."""
        cells = self._reachable.get(structure)
        return cells is None or cell in cells

    def next_event(self, structure, cell, min_cycle):
        """First event on ``cell`` at or after ``min_cycle``.

        Returns ``(cycle, is_write, position)`` -- ``position`` is the
        event's index in the cell's stream, a stable identifier of the
        interval boundary (the equivalence-grouping key) -- or ``None``
        when the golden run never touches the cell again.
        """
        events = self._events[structure].get(cell)
        if not events:
            return None
        pos = bisect.bisect_left(events, min_cycle << 1)
        if pos == len(events):
            return None
        encoded = events[pos]
        return encoded >> 1, bool(encoded & 1), pos

    # ------------------------------------------------------------------
    # introspection (tests, reports)
    # ------------------------------------------------------------------

    def structures(self):
        return tuple(sorted(self._bits_per_cell))

    def cells(self, structure):
        """Cells of ``structure`` with at least one event, sorted."""
        return tuple(sorted(self._events.get(structure, ())))

    def events(self, structure, cell):
        """Decoded ``(cycle, is_write)`` event stream of one cell."""
        return tuple((e >> 1, bool(e & 1))
                     for e in self._events.get(structure, {}).get(cell, ()))

    def event_count(self):
        return sum(len(events) for cells in self._events.values()
                   for events in cells.values())

    # ------------------------------------------------------------------
    # snapshot / restore (checkpoint round trips)
    # ------------------------------------------------------------------

    def snapshot(self):
        return (
            {s: {c: list(ev) for c, ev in cells.items()}
             for s, cells in self._events.items()},
            dict(self._bits_per_cell),
            dict(self._reachable),
        )

    def restore(self, state):
        events, bits, reachable = state
        self._events = {s: {c: list(ev) for c, ev in cells.items()}
                        for s, cells in events.items()}
        self._bits_per_cell = dict(bits)
        self._reachable = dict(reachable)

    def __repr__(self):
        per = ", ".join(
            f"{s}:{sum(len(e) for e in cells.values())}ev"
            for s, cells in sorted(self._events.items())
        )
        return f"LifetimeTrace({per or 'empty'})"
