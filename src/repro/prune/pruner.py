"""Dead-interval early classification and equivalence grouping.

The pruner answers one question per sampled fault, *before* any
simulation: what is the first thing the golden run does to the faulted
cell after the injection instant?

* **a write** -- the flipped bit is overwritten before anything reads
  it.  Nothing consumed the corruption, the overwrite erases it, and
  the machine is bit-identical to the golden run from that cycle on:
  the fault is Masked by construction.  This is exact, not statistical
  (see DESIGN.md for the argument and its exclusions).
* **nothing, ever** -- the bit is never touched again.  No observation
  channel that watches *behavior* (pinout traffic, program output) can
  see it, so the fault is Masked -- except at the ``arch``
  (layer-boundary / HVF) observation point, which inspects the final
  hardware state itself and would report the surviving flip as latent
  corruption; there the fault is left to simulation.
* **a read** -- the corruption is consumed and anything may happen:
  the fault must be simulated (``dead`` mode), or -- opt-in ``group``
  mode -- it joins the equivalence group of every sampled fault of the
  same bit in the same live interval: the machine state at the first
  read is identical for all of them, so one representative injected
  just before that read stands for the group.

Two refinements keep the classification *exact* on every tier:

**The event horizon.**  On pipelined backends the golden trajectory is
drain-punctuated: at every checkpoint boundary the golden run pauses
fetch, empties the pipeline and round-trips through a restore.  A
faulty run replays exactly that trajectory up to the injection instant
but then free-runs -- so the golden event stream is provably the faulty
machine's event stream only up to the *current segment's pre-drain stop
cycle* (past it, speculative activity and -- at the renamed tier --
physical-register labeling may diverge even for a masked fault).  The
pruner therefore accepts a verdict on such backends only when the
deciding event lies within the segment the fault was injected into;
anything beyond the horizon is simulated.  Drain-free backends (the
arch emulator) have no such divergence and keep the unlimited horizon,
as does the final segment of any run (the golden run free-runs from its
last checkpoint to program exit, exactly like a faulty run does).

**Structural reachability.**  A backend may declare cells its machine
cannot address at all -- the RT-level register-file macro's banked and
spare entries, which no instruction field can name.  Faults there are
masked by construction in every trajectory, with no horizon caveat.

The injection instant vs. the event timeline needs one convention: a
run pauses *between* ticks, and backends differ on whether the work
stamped with the stop cycle has already executed when the run pauses
there (``SimulatorBase.TRACE_EVENTS_AT_STOP_EXECUTED``).  The pruner
derives the first post-injection event stamp from that flag, so its
notion of "after the injection" matches ``run(stop_cycle=...)`` +
``inject()`` exactly, tier by tier.
"""

from __future__ import annotations

import bisect
from typing import Protocol, Sequence, TYPE_CHECKING

from repro.injection.classify import FaultClass

if TYPE_CHECKING:
    from repro.prune.trace import Event, LifetimeTrace

    #: Golden checkpoint cadence: ``(boundary_cycles, boundary_stops)``.
    Segments = tuple[Sequence[int], Sequence[int]]


class FaultLike(Protocol):
    """What the pruner reads off a sampled fault."""

    @property
    def structure(self) -> str: ...

    @property
    def bit(self) -> int: ...

    @property
    def cycle(self) -> int: ...

#: The campaign's pruning modes (``CampaignConfig.prune_mode``).
#: ``off``/``dead``/``group`` are the dynamic trace-driven modes above;
#: ``static`` classifies from the program text plus the retired-PC
#: stream alone, with no access trace captured at all
#: (:mod:`repro.staticcheck`).
PRUNE_MODES = ("off", "dead", "group", "static")

#: Detail strings of records classified without simulation.
DEAD_OVERWRITE_DETAIL = "pruned: overwritten before next read"
DEAD_SILENT_DETAIL = "pruned: never read again"
DEAD_UNREACHABLE_DETAIL = "pruned: structurally unreachable cell"


class GroupInterval:
    """A live fault's position: the first golden read that consumes it."""

    __slots__ = ("key", "read_cycle")

    def __init__(self, key: tuple[str, int, int],
                 read_cycle: int) -> None:
        #: ``(structure, bit, event_position)`` -- faults sharing it are
        #: injected into identical machine states at the same read.
        self.key = key
        self.read_cycle = read_cycle


class FaultPruner:
    """Classifies faults from the golden access trace, without simulation.

    Built once per campaign from the golden run's
    :class:`~repro.prune.trace.LifetimeTrace`; consulted by
    :meth:`repro.injection.campaign.Campaign.run` while partitioning
    the sampled fault list.  ``segments`` carries the golden
    checkpoint cadence ``(boundary_cycles, boundary_stops)`` on
    pipelined backends (the event-horizon input); ``None`` means the
    whole trace is authoritative (drain-free backends).
    """

    def __init__(self, trace: LifetimeTrace,
                 events_at_stop_executed: bool, observation: str,
                 segments: Segments | None = None) -> None:
        self.trace = trace
        #: Tick-stamp convention of the backend that produced the trace
        #: (see the module docstring).
        self.events_at_stop_executed = bool(events_at_stop_executed)
        self.observation = observation
        self.segments = segments

    # ------------------------------------------------------------------

    def _horizon(self, fault_cycle: int) -> int | None:
        """Last golden event stamp provably shared with a faulty run
        injected at ``fault_cycle``: the pre-drain stop closing the
        fault's segment, ``None`` for unlimited (drain-free backend,
        or the final free-running segment), ``-1`` when the injection
        lands inside a drain window (nothing past it is shared)."""
        if self.segments is None:
            return None
        cycles, stops = self.segments
        k = max(bisect.bisect_right(cycles, fault_cycle) - 1, 0)
        if k + 1 >= len(stops):
            return None
        stop = stops[k + 1]
        return stop if fault_cycle <= stop else -1

    def _first_event_after_injection(
            self, fault: FaultLike) -> tuple[Event | None, bool]:
        """``(event_or_None, trustworthy)`` for the faulted cell."""
        trace = self.trace
        threshold = fault.cycle + (1 if self.events_at_stop_executed
                                   else 0)
        cell = trace.cell_of(fault.structure, fault.bit)
        event = trace.next_event(fault.structure, cell, threshold)
        horizon = self._horizon(fault.cycle)
        if horizon is None:
            return event, True
        if event is None:
            # "Never touched again" is a whole-run claim; a bounded
            # horizon cannot prove it.
            return None, False
        cycle = event[0]
        return event, cycle <= horizon

    def classify(
            self, fault: FaultLike) -> tuple[FaultClass, str] | None:
        """``(FaultClass, detail)`` when provable without simulation,
        else ``None`` (the fault must be simulated)."""
        trace = self.trace
        if not trace.traces(fault.structure):
            return None
        cell = trace.cell_of(fault.structure, fault.bit)
        if not trace.reachable(fault.structure, cell):
            return FaultClass.MASKED, DEAD_UNREACHABLE_DETAIL
        event, trustworthy = self._first_event_after_injection(fault)
        if not trustworthy:
            return None
        if event is None:
            # The bit survives to the end of the run untouched.  Behavior
            # is golden, but the arch (HVF) observation point inspects
            # final state and would call the flip latent -- simulate it.
            if self.observation == "arch":
                return None
            return FaultClass.MASKED, DEAD_SILENT_DETAIL
        _, is_write, _ = event
        if is_write:
            return FaultClass.MASKED, DEAD_OVERWRITE_DETAIL
        return None

    def group_interval(self, fault: FaultLike) -> GroupInterval | None:
        """The live interval of a *read-consumed* fault, or ``None``
        when the fault is prunable/untraced/beyond the horizon
        (callers check :meth:`classify` first; this returns ``None``
        for anything that does not provably end in a read)."""
        trace = self.trace
        if not trace.traces(fault.structure):
            return None
        cell = trace.cell_of(fault.structure, fault.bit)
        if not trace.reachable(fault.structure, cell):
            return None
        event, trustworthy = self._first_event_after_injection(fault)
        if not trustworthy or event is None:
            return None
        cycle, is_write, position = event
        if is_write:
            return None
        return GroupInterval((fault.structure, fault.bit, position),
                             cycle)

    def representative_cycle(self, interval: GroupInterval) -> int:
        """The injection instant for a group representative: the latest
        stop cycle at which the consuming read has not yet executed."""
        if self.events_at_stop_executed:
            return interval.read_cycle - 1
        return interval.read_cycle

    def __repr__(self) -> str:
        return (
            f"FaultPruner({self.trace!r}, observation="
            f"{self.observation!r})"
        )
