"""Lifetime-aware fault pruning (the campaign's largest accelerator).

The paper's central cost is the injection campaign itself: one
simulation per sampled fault, repeated per structure, workload and
modeling tier.  A large fraction of those simulations is provably
redundant: a flipped bit that is *overwritten before it is ever read*
cannot influence anything -- the overwrite erases the corruption and
the machine is bit-identical to the golden run from that instant on.
Such faults are Masked *by construction* and need no simulation at all
(the MeRLiN-style fault-list pruning of the GeFIN lineage).

This package holds the two pieces:

* :class:`~repro.prune.trace.LifetimeTrace` -- the golden run's
  per-cell read/write event log, captured by the backend listeners the
  :class:`~repro.sim.base.SimulatorBase` ``trace_accesses`` hook
  installs (arch: the interpreter's register file and CPSR; uarch: the
  physical register file; rtl: the register-file macro and CPSR flops);
* :class:`~repro.prune.pruner.FaultPruner` -- consulted by the
  campaign engine before the faulty phase: dead-interval faults are
  classified Masked without simulation (exact, never statistical), and
  -- opt-in, ``prune_mode="group"`` -- faults sharing a live interval
  collapse to one representative injected right before its first read.

A third capture, :class:`~repro.prune.trace.RetiredPCTrace`, records
just the golden retired-instruction stream -- the only instrumentation
``prune_mode="static"`` needs: the static dataflow engine
(:mod:`repro.staticcheck`) proves a subset of the same verdicts from
the program text alone, anchored to the injection instant through this
stream.

See DESIGN.md ("Lifetime-aware fault pruning" and "Static analysis")
for the soundness arguments and the exclusions that keep the pruning
exact.
"""

from repro.prune.pruner import FaultPruner, PRUNE_MODES
from repro.prune.trace import LifetimeTrace, RetiredPCTrace

__all__ = ["FaultPruner", "LifetimeTrace", "PRUNE_MODES",
           "RetiredPCTrace"]
