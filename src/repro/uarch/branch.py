"""Branch prediction: bimodal counters + BTB-free decoded targets + RAS.

The simulator fetches *decoded* instructions, so direct targets (B/BL) are
known at fetch and only the taken/not-taken decision and return addresses
need predicting -- the same simplification gem5 makes when decode
information is available at fetch."""


class BranchPredictor:
    """Bimodal 2-bit predictor with a small return-address stack."""

    def __init__(self, entries=1024, ras_entries=8):
        self.entries = entries
        self.counters = [2] * entries  # weakly taken
        self.ras = []
        self.ras_entries = ras_entries
        self.lookups = 0
        self.mispredicts = 0

    def _index(self, pc):
        return (pc >> 2) % self.entries

    def predict_taken(self, pc):
        """Predicted direction for the conditional branch at ``pc``."""
        self.lookups += 1
        return self.counters[self._index(pc)] >= 2

    def update(self, pc, taken):
        index = self._index(pc)
        counter = self.counters[index]
        if taken and counter < 3:
            self.counters[index] = counter + 1
        elif not taken and counter > 0:
            self.counters[index] = counter - 1

    def push_return(self, addr):
        if len(self.ras) >= self.ras_entries:
            self.ras.pop(0)
        self.ras.append(addr)

    def pop_return(self):
        """Predicted return target, or None when the RAS is empty."""
        if self.ras:
            return self.ras.pop()
        return None

    def snapshot(self):
        return (list(self.counters), list(self.ras),
                self.lookups, self.mispredicts)

    def restore(self, state):
        counters, ras, lookups, mispredicts = state
        self.counters = list(counters)
        self.ras = list(ras)
        self.lookups = lookups
        self.mispredicts = mispredicts
