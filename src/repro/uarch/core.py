"""The out-of-order core model (fetch to commit).

An execute-at-execute model in the gem5 style: operand values are read
from the physical register file when an instruction issues, results are
written back into it, and loads/stores move real bytes through the L1
data cache.  Faults injected into the PRF or cache arrays therefore
propagate with full microarchitectural fidelity (renaming, forwarding,
speculation and write-back behaviour all apply).
"""

from repro.errors import SimFault
from repro.isa import alu
from repro.isa.flags import Flags, cond_passed
from repro.isa.instructions import (
    COMPARE_OPS,
    Cond,
    DP_IMM_OPS,
    DP_REG_FORM,
    DP_REG_OPS,
    LOAD_OPS,
    MEM_SIZE,
    Op,
    STORE_OPS,
    UNARY_OPS,
)
from repro.isa.syscalls import SyscallEmulator, SyscallError

_PC = 15


class InFlight:
    """One in-flight instruction (IQ + ROB record)."""

    __slots__ = (
        "seq", "inst", "pc", "predicted_next", "phys_of", "srcs",
        "src_flag", "dests", "flag_dest", "is_load", "is_store",
        "is_syscall", "store_ops", "load_ready_cycle", "result_next_pc",
        "completed", "issued", "complete_at", "fault", "addr_resolved",
        "decode_ready",
    )

    def __init__(self, seq, inst, pc, predicted_next, decode_ready):
        self.seq = seq
        self.inst = inst
        self.pc = pc
        self.predicted_next = predicted_next
        self.decode_ready = decode_ready
        self.phys_of = {}
        self.srcs = ()
        self.src_flag = None
        self.dests = []
        self.flag_dest = None
        self.is_load = inst.op in LOAD_OPS or inst.op == Op.LDM
        self.is_store = inst.op in STORE_OPS or inst.op == Op.STM
        self.is_syscall = inst.op == Op.SVC
        self.store_ops = []
        self.load_ready_cycle = 0
        self.result_next_pc = None
        self.completed = False
        self.issued = False
        self.complete_at = 0
        self.fault = None
        self.addr_resolved = not self.is_store

    def __repr__(self):
        return f"<InFlight #{self.seq} {self.inst!r}>"


class OoOCore:
    """Cycle-level out-of-order core.  Driven by
    :class:`repro.uarch.simulator.MicroArchSim`."""

    def __init__(self, config, program, ram, icache, dcache, predictor,
                 prf, rat, flag_file, flag_rat):
        self.cfg = config
        self.program = program
        self.ram = ram
        self.icache = icache
        self.dcache = dcache
        self.predictor = predictor
        self.prf = prf
        self.rat = rat
        self.flag_file = flag_file
        self.flag_rat = flag_rat
        self.syscalls = SyscallEmulator()

        self.cycle = 0
        self.icount = 0
        self.seq = 0
        self.pc = program.entry
        self.committed_next_pc = program.entry
        self.fetch_queue = []      # decoded, waiting for rename
        self.rob = []              # in-flight, program order
        self.iq = []               # subset of rob waiting/ready to issue
        self.wb_queue = []         # executed, waiting for a WB slot
        self.fetch_stall_until = 0
        self.mem_busy_until = 0
        self.current_line = None
        self.redirect_target = None
        self.redirect_cycle = 0
        self.draining = False
        self.exited = False
        self.fault = None
        self.last_commit_cycle = 0
        self.mispredicts = 0

    # ==================================================================
    # per-cycle pipeline (evaluated back to front)
    # ==================================================================

    def tick(self):
        self.cycle += 1
        self._commit()
        if self.exited or self.fault is not None:
            return
        self._writeback()
        self._issue_execute()
        self._rename_dispatch()
        self._fetch()

    # ------------------------------------------------------------------
    # commit
    # ------------------------------------------------------------------

    def _commit(self):
        budget = self.cfg.commit_width
        while budget and self.rob:
            rec = self.rob[0]
            if not rec.completed:
                if self.cycle - self.last_commit_cycle > 50_000:
                    self.fault = SimFault(
                        "halt-trap", "pipeline deadlock", addr=rec.pc
                    )
                    return
                break
            if rec.fault is not None:
                self.fault = rec.fault
                return
            if rec.is_store and rec.store_ops:
                if self.mem_busy_until > self.cycle:
                    break
                missed = False
                for addr, size, value in rec.store_ops:
                    try:
                        _, hit = self.dcache.access(
                            addr, size, write=True, value=value,
                            cycle=self.cycle,
                        )
                    except SimFault as exc:
                        self.fault = exc
                        return
                    missed = missed or not hit
                if missed:
                    self.mem_busy_until = self.cycle + self.cfg.miss_latency
            if rec.is_syscall:
                if not self._commit_syscall(rec):
                    return
            for arch, new, old in rec.dests:
                self.rat.commit(arch, new, old)
            if rec.flag_dest is not None:
                self.flag_rat.commit(0, *rec.flag_dest)
            self.committed_next_pc = (
                rec.result_next_pc
                if rec.result_next_pc is not None else rec.pc + 4
            )
            self.icount += 1
            self.last_commit_cycle = self.cycle
            self.rob.pop(0)
            budget -= 1
            if self.exited:
                return

    def _commit_syscall(self, rec):
        """Execute an SVC at the head of the ROB.  Returns False on fault."""

        def read_reg(index):
            return self.prf.read(self.rat.committed[index])

        def read_byte(addr):
            value, _ = self.dcache.access(addr, 1, write=False,
                                          cycle=self.cycle)
            return value

        try:
            result = self.syscalls.handle(rec.inst.imm, read_reg, read_byte)
        except (SyscallError, SimFault) as exc:
            self.fault = (
                exc if isinstance(exc, SimFault)
                else SimFault("syscall-error", str(exc), addr=rec.pc)
            )
            return False
        if rec.dests:
            # SVC's r0 result becomes visible only now.
            arch, new, _ = rec.dests[0]
            self.prf.write(new, result)
            self.prf.ready[new] = True
        if self.syscalls.exited:
            self.exited = True
        return True

    # ------------------------------------------------------------------
    # writeback
    # ------------------------------------------------------------------

    def _writeback(self):
        if not self.wb_queue:
            return
        self.wb_queue.sort(key=lambda r: (r.complete_at, r.seq))
        budget = self.cfg.writeback_width
        remaining = []
        for rec in self.wb_queue:
            if rec.complete_at > self.cycle or budget == 0:
                remaining.append(rec)
                continue
            budget -= 1
            if not rec.is_syscall:
                for _, new, _ in rec.dests:
                    self.prf.ready[new] = True
                if rec.flag_dest is not None:
                    self.flag_file.ready[rec.flag_dest[0]] = True
            rec.completed = True
        self.wb_queue = remaining

    # ------------------------------------------------------------------
    # issue + execute
    # ------------------------------------------------------------------

    def _operands_ready(self, rec):
        prf_ready = self.prf.ready
        for phys in rec.srcs:
            if not prf_ready[phys]:
                return False
        if rec.src_flag is not None and not self.flag_file.ready[
                rec.src_flag]:
            return False
        return True

    def _older_stores_resolved(self, rec):
        for other in self.rob:
            if other.seq >= rec.seq:
                return True
            if other.is_store and not other.addr_resolved:
                return False
        return True

    def _issue_execute(self):
        alu_free = self.cfg.alu_units
        mul_free = self.cfg.mul_units
        budget = self.cfg.execute_width
        issued = []
        for rec in self.iq:
            if budget == 0:
                break
            if not self._operands_ready(rec):
                continue
            op = rec.inst.op
            if op in (Op.MUL, Op.MLA):
                if mul_free == 0:
                    continue
            elif rec.is_load:
                if self.mem_busy_until > self.cycle:
                    continue
                if not self._older_stores_resolved(rec):
                    continue
            else:
                if alu_free == 0:
                    continue
            # Execute now.
            try:
                latency = self._execute(rec)
            except SimFault as exc:
                rec.fault = exc
                latency = 1
            if op in (Op.MUL, Op.MLA):
                mul_free -= 1
            elif not rec.is_load:
                alu_free -= 1
            budget -= 1
            rec.issued = True
            rec.complete_at = self.cycle + latency
            self.wb_queue.append(rec)
            issued.append(rec)
            if rec.result_next_pc is not None and \
                    rec.result_next_pc != rec.predicted_next:
                self._mispredict(rec)
                break
        if issued:
            issued_set = set(id(r) for r in issued)
            self.iq = [r for r in self.iq if id(r) not in issued_set]

    def _mispredict(self, rec):
        """Squash everything younger than ``rec`` and redirect fetch."""
        self.mispredicts += 1
        keep = []
        squashed = []
        for other in self.rob:
            (keep if other.seq <= rec.seq else squashed).append(other)
        for other in reversed(squashed):
            for arch, new, old in reversed(other.dests):
                self.rat.squash(arch, new, old)
            if other.flag_dest is not None:
                self.flag_rat.squash(0, *other.flag_dest)
        self.rob = keep
        dead = set(id(r) for r in squashed)
        self.iq = [r for r in self.iq if id(r) not in dead]
        self.wb_queue = [r for r in self.wb_queue if id(r) not in dead]
        self.fetch_queue = []
        self.redirect_target = rec.result_next_pc
        self.redirect_cycle = self.cycle + self.cfg.mispredict_penalty
        self.current_line = None

    # -- operand access ------------------------------------------------

    def _read_operand(self, rec, arch):
        if arch == _PC:
            return (rec.pc + 8) & 0xFFFFFFFF
        return self.prf.read(rec.phys_of[arch])

    def _read_flags(self, rec):
        if rec.src_flag is None:
            return Flags()
        return Flags.unpack(self.flag_file.read(rec.src_flag))

    def _write_dest(self, rec, arch, value):
        for darch, new, _ in rec.dests:
            if darch == arch:
                self.prf.write(new, value)
                return
        raise AssertionError(f"no dest {arch} in {rec!r}")

    def _copy_old_dests(self, rec):
        """Condition failed: preserve old values through the new mappings."""
        for _, new, old in rec.dests:
            self.prf.write(new, self.prf.read(old))
        if rec.flag_dest is not None:
            new, old = rec.flag_dest
            self.flag_file.write(new, self.flag_file.read(old))

    # -- memory helpers --------------------------------------------------

    def _mem_read(self, rec, addr, size):
        """Read through the cache, then forward from older queued stores."""
        if addr % size:
            raise SimFault("align-fault", f"{size}-byte load", addr=addr)
        value, hit = self.dcache.access(addr, size, write=False,
                                        cycle=self.cycle)
        blob = bytearray(value.to_bytes(size, "little"))
        for other in self.rob:
            if other.seq >= rec.seq:
                break
            if not other.is_store:
                continue
            for saddr, ssize, svalue in other.store_ops:
                if saddr + ssize <= addr or addr + size <= saddr:
                    continue
                sbytes = (svalue & ((1 << (8 * ssize)) - 1)).to_bytes(
                    ssize, "little"
                )
                for i in range(ssize):
                    pos = saddr + i - addr
                    if 0 <= pos < size:
                        blob[pos] = sbytes[i]
        return int.from_bytes(blob, "little"), hit

    # -- the execute dispatch -------------------------------------------

    def _execute(self, rec):
        """Compute the record's result.  Returns the completion latency."""
        inst = rec.inst
        op = inst.op
        cfg = self.cfg
        flags = self._read_flags(rec)
        if inst.cond != Cond.AL and not cond_passed(inst.cond, flags):
            self._copy_old_dests(rec)
            if op in (Op.B, Op.BL, Op.BX) or _PC in inst.dst_regs():
                rec.result_next_pc = rec.pc + 4
            if op == Op.B or (op == Op.BL and inst.cond != Cond.AL):
                self.predictor.update(rec.pc, taken=False)
            rec.addr_resolved = True
            return cfg.alu_latency

        if op in DP_REG_OPS or op in DP_IMM_OPS:
            return self._exec_dp(rec, flags)
        if op == Op.MOVW:
            return self._finish_alu(rec, inst.rd, inst.imm & 0xFFFF)
        if op == Op.MOVT:
            old = self._read_operand(rec, inst.rd)
            value = (old & 0xFFFF) | ((inst.imm & 0xFFFF) << 16)
            return self._finish_alu(rec, inst.rd, value)
        if op in (Op.MUL, Op.MLA):
            result = alu.multiply(
                op,
                self._read_operand(rec, inst.rn),
                self._read_operand(rec, inst.rm),
                self._read_operand(rec, inst.ra) if op == Op.MLA else 0,
            )
            if inst.s:
                new_flags = Flags(
                    n=bool(result & 0x80000000), z=result == 0,
                    c=flags.c, v=flags.v,
                )
                self._set_flags(rec, new_flags)
            self._write_dest(rec, inst.rd, result)
            return cfg.mul_latency
        if op in MEM_SIZE:
            return self._exec_mem(rec, flags)
        if op == Op.LDM:
            return self._exec_ldm(rec)
        if op == Op.STM:
            return self._exec_stm(rec)
        if op == Op.B:
            rec.result_next_pc = (rec.pc + inst.imm) & 0xFFFFFFFC
            if inst.cond != Cond.AL:
                self.predictor.update(rec.pc, taken=True)
            return cfg.alu_latency
        if op == Op.BL:
            self._write_dest(rec, 14, rec.pc + 4)
            rec.result_next_pc = (rec.pc + inst.imm) & 0xFFFFFFFC
            return cfg.alu_latency
        if op == Op.BX:
            rec.result_next_pc = self._read_operand(rec, inst.rm) \
                & 0xFFFFFFFC
            return cfg.alu_latency
        if op in (Op.SVC, Op.NOP):
            return cfg.alu_latency
        if op == Op.HLT:
            raise SimFault("halt-trap", "executed HLT/pool word",
                           addr=rec.pc)
        raise SimFault("undefined-inst", repr(op), addr=rec.pc)

    def _set_flags(self, rec, new_flags):
        if rec.flag_dest is not None:
            self.flag_file.write(rec.flag_dest[0], new_flags.pack())

    def _finish_alu(self, rec, arch, value):
        self._write_dest(rec, arch, value)
        if arch == _PC:  # pragma: no cover - PC dests are filtered earlier
            rec.result_next_pc = value & 0xFFFFFFFC
        return self.cfg.alu_latency

    def _operand2(self, rec, flags):
        inst = rec.inst
        if inst.op in DP_IMM_OPS:
            return inst.imm & 0xFFFFFFFF, flags.c
        value = self._read_operand(rec, inst.rm)
        if inst.shift_reg is not None:
            amount = self._read_operand(rec, inst.shift_reg) & 0xFF
        else:
            amount = inst.shift_amount
        return alu.barrel_shift(value, inst.shift_kind, amount, flags.c)

    def _exec_dp(self, rec, flags):
        inst = rec.inst
        op2, shifter_carry = self._operand2(rec, flags)
        op = DP_REG_FORM.get(inst.op, inst.op)
        rn_value = (
            0 if op in UNARY_OPS else self._read_operand(rec, inst.rn)
        )
        result, new_flags = alu.dp_compute(op, rn_value, op2, flags,
                                           shifter_carry)
        if inst.s or op in COMPARE_OPS:
            self._set_flags(rec, new_flags)
        if op not in COMPARE_OPS:
            if inst.rd == _PC:
                rec.result_next_pc = result & 0xFFFFFFFC
            else:
                self._write_dest(rec, inst.rd, result)
        return self.cfg.alu_latency

    def _exec_mem(self, rec, flags):
        inst = rec.inst
        size = MEM_SIZE[inst.op]
        base = self._read_operand(rec, inst.rn)
        if inst.op in (Op.LDR, Op.STR, Op.LDRB, Op.STRB, Op.LDRH, Op.STRH):
            offset = inst.imm
        else:
            value = self._read_operand(rec, inst.rm)
            offset, _ = alu.barrel_shift(
                value, inst.shift_kind, inst.shift_amount, flags.c
            )
        addr = (base + offset) & 0xFFFFFFFF if inst.pre else base
        writeback_value = (base + offset) & 0xFFFFFFFF
        latency = self.cfg.alu_latency
        if rec.is_load:
            value, hit = self._mem_read(rec, addr, size)
            if inst.rd == _PC:
                rec.result_next_pc = value & 0xFFFFFFFC
            else:
                self._write_dest(rec, inst.rd, value)
            latency = self.cfg.load_hit_latency
            if not hit:
                latency += self.cfg.miss_latency
                self.mem_busy_until = self.cycle + self.cfg.miss_latency
        else:
            if addr % size:
                raise SimFault("align-fault", f"{size}-byte store",
                               addr=addr)
            if addr + size > self.ram.size:
                raise SimFault("mem-fault", "store beyond RAM", addr=addr)
            data = self._read_operand(rec, inst.rd)
            rec.store_ops = [(addr, size, data)]
            rec.addr_resolved = True
            latency = self.cfg.store_latency
        if inst.writeback or not inst.pre:
            if not (rec.is_load and inst.rn == inst.rd):
                self._write_dest(rec, inst.rn, writeback_value)
        return latency

    def _exec_ldm(self, rec):
        inst = rec.inst
        base = self._read_operand(rec, inst.rn)
        addr = base
        count = 0
        any_miss = False
        for i in range(16):
            if inst.reglist & (1 << i):
                value, hit = self._mem_read(rec, addr, 4)
                any_miss = any_miss or not hit
                if i == _PC:
                    rec.result_next_pc = value & 0xFFFFFFFC
                else:
                    self._write_dest(rec, i, value)
                addr += 4
                count += 1
        if inst.writeback and not (inst.reglist & (1 << inst.rn)):
            self._write_dest(rec, inst.rn, base + 4 * count)
        latency = self.cfg.load_hit_latency + count - 1
        if any_miss:
            latency += self.cfg.miss_latency
            self.mem_busy_until = self.cycle + self.cfg.miss_latency
        return latency

    def _exec_stm(self, rec):
        inst = rec.inst
        base = self._read_operand(rec, inst.rn)
        count = bin(inst.reglist).count("1")
        addr = (base - 4 * count) & 0xFFFFFFFF
        start = addr
        ops = []
        for i in range(16):
            if inst.reglist & (1 << i):
                if addr % 4:
                    raise SimFault("align-fault", "stm", addr=addr)
                if addr + 4 > self.ram.size:
                    raise SimFault("mem-fault", "stm beyond RAM", addr=addr)
                ops.append((addr, 4, self._read_operand(rec, i)))
                addr += 4
        rec.store_ops = ops
        rec.addr_resolved = True
        if inst.writeback:
            self._write_dest(rec, inst.rn, start)
        return self.cfg.store_latency + count - 1

    # ------------------------------------------------------------------
    # rename / dispatch
    # ------------------------------------------------------------------

    def _rename_dispatch(self):
        budget = self.cfg.fetch_width
        while budget and self.fetch_queue:
            rec = self.fetch_queue[0]
            if rec.decode_ready > self.cycle:
                break
            if len(self.rob) >= self.cfg.rob_entries:
                break
            if len(self.iq) >= self.cfg.iq_entries:
                break
            inst = rec.inst
            dsts = [a for a in inst.dst_regs() if a != _PC]
            need_flags = inst.writes_flags()
            if self.rat.available() < len(dsts):
                break
            if need_flags and self.flag_rat.available() < 1:
                break
            self.fetch_queue.pop(0)
            if rec.fault is not None:
                # Bad-fetch record: goes straight to the ROB, already
                # "completed", and faults when it reaches the head.
                self.rob.append(rec)
                budget -= 1
                continue
            src_arches = set(a for a in inst.src_regs() if a != _PC)
            rec.phys_of = {a: self.rat.lookup(a) for a in src_arches}
            srcs = list(rec.phys_of.values())
            if inst.cond != Cond.AL or inst.reads_flags() \
                    or inst.writes_flags():
                rec.src_flag = self.flag_rat.lookup(0)
            for arch in dsts:
                new, old = self.rat.allocate(arch)
                rec.dests.append((arch, new, old))
                if inst.cond != Cond.AL:
                    srcs.append(old)
            if need_flags:
                rec.flag_dest = self.flag_rat.allocate(0)
            rec.srcs = tuple(srcs)
            self.rob.append(rec)
            self.iq.append(rec)
            budget -= 1

    # ------------------------------------------------------------------
    # fetch
    # ------------------------------------------------------------------

    def _fetch(self):
        if self.redirect_target is not None:
            if self.cycle < self.redirect_cycle:
                return
            self.pc = self.redirect_target
            self.redirect_target = None
        if self.draining or self.exited:
            return
        if self.fetch_stall_until > self.cycle:
            return
        budget = self.cfg.fetch_width
        while budget and len(self.fetch_queue) < self.cfg.decode_buffer:
            inst = self.program.inst_at(self.pc)
            line = self.pc & ~(self.cfg.line_size - 1)
            if line != self.current_line:
                self.current_line = line
                if line + 4 <= self.ram.size:
                    _, hit = self.icache.access(line, 4, write=False,
                                                cycle=self.cycle)
                    if not hit:
                        self.fetch_stall_until = (
                            self.cycle + self.cfg.miss_latency
                        )
                        return
            self.seq += 1
            if inst is None:
                # Fetch ran off the text segment: deliver a faulting record.
                bad = InFlight(
                    self.seq,
                    _FAULT_INST,
                    self.pc,
                    self.pc + 4,
                    self.cycle + 2,
                )
                bad.fault = SimFault("mem-fault", "fetch outside text",
                                     addr=self.pc)
                bad.completed = True
                self.fetch_queue.append(bad)
                return
            predicted = self._predict_next(inst, self.pc)
            rec = InFlight(self.seq, inst, self.pc, predicted,
                           self.cycle + 2)
            self.fetch_queue.append(rec)
            self.pc = predicted
            budget -= 1

    def _predict_next(self, inst, pc):
        op = inst.op
        if op == Op.B:
            if inst.cond == Cond.AL or self.predictor.predict_taken(pc):
                return (pc + inst.imm) & 0xFFFFFFFC
            return pc + 4
        if op == Op.BL:
            self.predictor.push_return(pc + 4)
            return (pc + inst.imm) & 0xFFFFFFFC
        if op == Op.BX:
            target = self.predictor.pop_return()
            return target & 0xFFFFFFFC if target is not None else pc + 4
        return pc + 4

    # ------------------------------------------------------------------
    # drain support (for checkpoints)
    # ------------------------------------------------------------------

    def quiesced(self):
        return (
            not self.rob and not self.fetch_queue and not self.wb_queue
        )


#: Placeholder instruction attached to bad-fetch records.
_FAULT_INST = None


def _make_fault_inst():
    from repro.isa.instructions import Inst

    global _FAULT_INST
    _FAULT_INST = Inst(Op.HLT, text="<bad-fetch>")


_make_fault_inst()
