"""Physical register file, register alias tables and free lists.

The physical register file *holds the live values* (execute-at-execute
model): an injected bit-flip lands in exactly the array a fault in the real
A9's PRF (or gem5's regfile object) would corrupt, and propagates to every
later reader of that physical register.
"""

from repro.errors import SimFault

NUM_ARCH = 16
#: Pseudo-architectural index used to rename the NZCV flags as a unit.
FLAG_ARCH = 16


class PhysRegFile:
    """Value + ready-bit storage for the renamed integer registers."""

    def __init__(self, size):
        self.size = size
        self.values = [0] * size
        self.ready = [True] * size
        #: Optional access hook called as ``(index, is_write)`` on every
        #: value read/write (ready-bit traffic is not value state); the
        #: ``uarch`` backend's lifetime-trace capture.
        self.listener = None

    def read(self, index):
        if self.listener is not None:
            self.listener(index, False)
        return self.values[index]

    def write(self, index, value):
        if self.listener is not None:
            self.listener(index, True)
        self.values[index] = value & 0xFFFFFFFF

    # -- fault-injection interface ------------------------------------

    def bit_count(self):
        return self.size * 32

    def flip_bit(self, bit_index):
        reg, bit = divmod(bit_index, 32)
        self.values[reg] ^= 1 << bit

    def snapshot(self):
        return (list(self.values), list(self.ready))

    def restore(self, state):
        values, ready = state
        self.values = list(values)
        self.ready = list(ready)


class RenameMap:
    """Speculative + committed RAT with a free list.

    Arch slots 0..15 are r0-r15 (r15 is never renamed -- the PC lives in
    fetch); slot 16 is the NZCV flag bundle.
    """

    def __init__(self, prf, arch_slots=NUM_ARCH + 1):
        self.prf = prf
        self.arch_slots = arch_slots
        self.map = list(range(arch_slots))
        self.committed = list(range(arch_slots))
        self.free = list(range(arch_slots, prf.size))

    def available(self):
        return len(self.free)

    def lookup(self, arch):
        return self.map[arch]

    def allocate(self, arch):
        """Rename ``arch`` to a fresh physical register.

        Returns ``(new_phys, old_phys)``; raises when the free list is
        empty (callers check :meth:`available` first).
        """
        if not self.free:
            raise SimFault("undefined-inst", "rename with empty free list")
        new = self.free.pop()
        old = self.map[arch]
        self.map[arch] = new
        self.prf.ready[new] = False
        return new, old

    def commit(self, arch, new_phys, old_phys):
        """Retire a mapping: the previous committed physical reg is freed."""
        previous = self.committed[arch]
        self.committed[arch] = new_phys
        if previous != new_phys and previous == old_phys:
            self.free.append(previous)

    def squash(self, arch, new_phys, old_phys):
        """Undo a speculative mapping (walked youngest-first)."""
        self.map[arch] = old_phys
        self.free.append(new_phys)

    def committed_value(self, arch):
        return self.prf.read(self.committed[arch])

    def set_committed_value(self, arch, value):
        self.prf.write(self.committed[arch], value)
        self.prf.ready[self.committed[arch]] = True

    def snapshot(self):
        return (list(self.map), list(self.committed), list(self.free))

    def restore(self, state):
        map_, committed, free = state
        self.map = list(map_)
        self.committed = list(committed)
        self.free = list(free)
