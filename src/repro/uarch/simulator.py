"""Public microarchitecture-level simulator API (the "GeFIN on gem5" tier).

Wraps :class:`~repro.uarch.core.OoOCore` with:

* program loading and syscall-emulation mode (SS III-C of the paper);
* run control (stop cycles, watchdogs);
* pinout-trace publication (the RTL-equivalent observation point);
* drain-based checkpoint/restore (how injection campaigns amortise the
  time to reach each injection instant);
* the fault-injection interface over the PRF and cache arrays.
"""

import enum

from repro.errors import SimFault
from repro.memory.bus import Transaction
from repro.memory.cache import Cache, CacheConfig
from repro.memory.ram import RAM
from repro.uarch.branch import BranchPredictor
from repro.uarch.config import CortexA9Config
from repro.uarch.core import OoOCore
from repro.uarch.regfile import NUM_ARCH, PhysRegFile, RenameMap


class RunStatus(enum.Enum):
    RUNNING = "running"
    EXITED = "exited"
    FAULT = "fault"
    STOPPED = "stopped"   # reached the requested stop cycle
    TIMEOUT = "timeout"   # watchdog expired


class MicroArchSim:
    """Cycle-level Cortex-A9-class simulator with fault injection."""

    LEVEL = "uarch"

    def __init__(self, program, config=None):
        self.config = config or CortexA9Config()
        self.program = program
        self.pinout = []
        self._build()

    def _build(self):
        cfg = self.config
        layout = self.program.layout
        self.ram = RAM(layout.ram_size)
        self.program.load_into(self.ram)

        def bus_event(kind, addr, data, cycle):
            self.pinout.append(Transaction(kind, addr, data, cycle))

        self.dcache = Cache(
            "l1d",
            CacheConfig(cfg.dcache_size, cfg.dcache_ways, cfg.line_size),
            self.ram, bus_listener=bus_event,
        )
        self.icache = Cache(
            "l1i",
            CacheConfig(cfg.icache_size, cfg.icache_ways, cfg.line_size),
            self.ram, bus_listener=bus_event,
        )
        self.predictor = BranchPredictor(cfg.predictor_entries,
                                         cfg.ras_entries)
        self.prf = PhysRegFile(cfg.phys_regs)
        self.rat = RenameMap(self.prf)
        self.flag_file = PhysRegFile(cfg.flag_regs)
        self.flag_rat = RenameMap(self.flag_file, arch_slots=1)
        self.core = OoOCore(
            cfg, self.program, self.ram, self.icache, self.dcache,
            self.predictor, self.prf, self.rat, self.flag_file,
            self.flag_rat,
        )
        # Bare-metal convention: SP starts at the top of the stack.
        self.prf.write(self.rat.committed[13], layout.stack_top)

    # ------------------------------------------------------------------
    # run control
    # ------------------------------------------------------------------

    @property
    def cycle(self):
        return self.core.cycle

    @property
    def icount(self):
        return self.core.icount

    @property
    def exited(self):
        return self.core.exited

    @property
    def exit_code(self):
        return self.core.syscalls.exit_code

    @property
    def fault(self):
        return self.core.fault

    @property
    def output(self):
        return bytes(self.core.syscalls.output)

    def run(self, stop_cycle=None, max_cycles=5_000_000):
        """Advance until program exit, a fault, ``stop_cycle`` or the
        watchdog.  Returns a :class:`RunStatus`."""
        core = self.core
        while True:
            if core.exited:
                return RunStatus.EXITED
            if core.fault is not None:
                return RunStatus.FAULT
            if stop_cycle is not None and core.cycle >= stop_cycle:
                return RunStatus.STOPPED
            if core.cycle >= max_cycles:
                return RunStatus.TIMEOUT
            core.tick()

    def run_to_completion(self, max_cycles=5_000_000):
        return self.run(max_cycles=max_cycles)

    # ------------------------------------------------------------------
    # architectural visibility (tests, syscall-level comparison)
    # ------------------------------------------------------------------

    def arch_state(self):
        """Committed architectural state (registers r0-r14 + flags)."""
        regs = [self.rat.committed_value(i) for i in range(NUM_ARCH - 1)]
        flags = self.flag_file.read(self.flag_rat.committed[0])
        return {"regs": regs, "flags": flags,
                "pc": self.core.committed_next_pc}

    # ------------------------------------------------------------------
    # checkpoints
    # ------------------------------------------------------------------

    def drain(self, guard_cycles=300_000):
        """Stop fetching and run until the pipeline is empty."""
        core = self.core
        core.draining = True
        deadline = core.cycle + guard_cycles
        try:
            while (not core.quiesced() and not core.exited
                   and core.fault is None):
                if core.cycle >= deadline:
                    raise SimFault("halt-trap", "drain did not converge")
                core.tick()
        finally:
            core.draining = False

    def checkpoint(self):
        """Drain the pipeline and capture a deterministic restart point."""
        self.drain()
        core = self.core
        state = self.arch_state()
        return {
            "cycle": core.cycle,
            "icount": core.icount,
            "seq": core.seq,
            "pc": core.committed_next_pc,
            "regs": list(state["regs"]),
            "flags": state["flags"],
            "ram": self.ram.snapshot(),
            "dcache": self.dcache.snapshot(),
            "icache": self.icache.snapshot(),
            "predictor": self.predictor.snapshot(),
            "syscalls": core.syscalls.snapshot(),
            "pinout": list(self.pinout),
            "mispredicts": core.mispredicts,
            "exited": core.exited,
        }

    def restore(self, cp):
        """Rebuild the machine from a checkpoint (fresh, empty pipeline)."""
        self._build()
        core = self.core
        self.ram.restore(cp["ram"])
        self.dcache.restore(cp["dcache"])
        self.icache.restore(cp["icache"])
        self.predictor.restore(cp["predictor"])
        core.syscalls.restore(cp["syscalls"])
        self.pinout[:] = list(cp["pinout"])
        for i, value in enumerate(cp["regs"]):
            self.rat.set_committed_value(i, value)
        self.flag_file.write(self.flag_rat.committed[0], cp["flags"])
        core.cycle = cp["cycle"]
        core.icount = cp["icount"]
        core.seq = cp["seq"]
        core.pc = cp["pc"]
        core.committed_next_pc = cp["pc"]
        core.last_commit_cycle = cp["cycle"]
        core.exited = cp["exited"]
        core.mispredicts = cp["mispredicts"]

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------

    #: Structures a campaign may target, with human descriptions.
    INJECTABLE = {
        "regfile": "physical integer register file (56 x 32 bits)",
        "l1d.data": "L1D data array",
        "l1d.tag": "L1D tag array",
        "l1d.valid": "L1D valid bits",
        "l1d.dirty": "L1D dirty bits",
        "l1d.age": "L1D replacement state",
        "l1i.data": "L1I data array",
        "l1i.tag": "L1I tag array",
        "l1i.valid": "L1I valid bits",
    }

    def _resolve_target(self, structure):
        if structure == "regfile":
            return self.prf, None
        prefix, _, array = structure.partition(".")
        cache = {"l1d": self.dcache, "l1i": self.icache}.get(prefix)
        if cache is None or array not in Cache.ARRAYS:
            raise ValueError(f"unknown fault target {structure!r}")
        return cache, array

    def fault_targets(self):
        """Mapping of structure name -> number of injectable bits."""
        out = {}
        for structure in self.INJECTABLE:
            holder, array = self._resolve_target(structure)
            out[structure] = (
                holder.bit_count() if array is None
                else holder.bit_count(array)
            )
        return out

    def inject(self, structure, bit_index):
        """Flip one bit in ``structure`` right now."""
        holder, array = self._resolve_target(structure)
        if array is None:
            holder.flip_bit(bit_index)
        else:
            holder.flip_bit(array, bit_index)

    # ------------------------------------------------------------------

    def stats(self):
        return {
            "cycles": self.cycle,
            "instructions": self.icount,
            "ipc": self.icount / self.cycle if self.cycle else 0.0,
            "l1d_hits": self.dcache.hits,
            "l1d_misses": self.dcache.misses,
            "l1d_writebacks": self.dcache.writebacks,
            "l1i_misses": self.icache.misses,
            "mispredicts": self.core.mispredicts,
        }

    def __repr__(self):
        return (
            f"MicroArchSim({self.program.name!r}, cycle={self.cycle},"
            f" icount={self.icount})"
        )
