"""Public microarchitecture-level simulator API (the "GeFIN on gem5" tier).

Wraps :class:`~repro.uarch.core.OoOCore` with the shared simulator
protocol of :class:`repro.sim.base.SimulatorBase`: program loading and
syscall-emulation mode (SS III-C of the paper), run control, pinout-trace
publication, drain-based checkpoint/restore, and the fault-injection
interface over the PRF and cache arrays.  Only the machine construction,
the state capture hooks and the ``INJECTABLE`` map live here.
"""

from repro.memory.cache import Cache, CacheConfig
from repro.sim.base import RunStatus, SimulatorBase
from repro.uarch.branch import BranchPredictor
from repro.uarch.config import CortexA9Config
from repro.uarch.core import OoOCore
from repro.uarch.regfile import NUM_ARCH, PhysRegFile, RenameMap

__all__ = ["MicroArchSim", "RunStatus"]


class MicroArchSim(SimulatorBase):
    """Cycle-level Cortex-A9-class simulator with fault injection."""

    LEVEL = "uarch"

    #: Explicitly not drain-free: the OoO pipeline is never quiescent
    #: mid-run, so golden boundary digests (post-drain states) are
    #: unreachable by a free-running faulty machine and the campaign
    #: engine's early-stop comparator must not fire here.  The base
    #: ``state_digest()`` covers this level through the cache/predictor
    #: extras; the raw PRF stays out of it deliberately -- physical
    #: register assignments are canonicalized by ``restore()`` (see
    #: ``CheckpointCache.seek``), so they are residue, not content.
    DRAIN_FREE = False

    #: Structures a campaign may target, with human descriptions.
    INJECTABLE = {
        "regfile": "physical integer register file (56 x 32 bits)",
        "l1d.data": "L1D data array",
        "l1d.tag": "L1D tag array",
        "l1d.valid": "L1D valid bits",
        "l1d.dirty": "L1D dirty bits",
        "l1d.age": "L1D replacement state",
        "l1i.data": "L1I data array",
        "l1i.tag": "L1I tag array",
        "l1i.valid": "L1I valid bits",
    }

    @classmethod
    def default_config(cls):
        return CortexA9Config()

    def _build(self):
        cfg = self.config
        layout = self.program.layout
        self.ram = self._make_ram()
        bus_event = self._bus_listener()
        self.dcache = Cache(
            "l1d",
            CacheConfig(cfg.dcache_size, cfg.dcache_ways, cfg.line_size),
            self.ram, bus_listener=bus_event,
        )
        self.icache = Cache(
            "l1i",
            CacheConfig(cfg.icache_size, cfg.icache_ways, cfg.line_size),
            self.ram, bus_listener=bus_event,
        )
        self.predictor = BranchPredictor(cfg.predictor_entries,
                                         cfg.ras_entries)
        self.prf = PhysRegFile(cfg.phys_regs)
        self.rat = RenameMap(self.prf)
        self.flag_file = PhysRegFile(cfg.flag_regs)
        self.flag_rat = RenameMap(self.flag_file, arch_slots=1)
        self.core = OoOCore(
            cfg, self.program, self.ram, self.icache, self.dcache,
            self.predictor, self.prf, self.rat, self.flag_file,
            self.flag_rat,
        )
        # Bare-metal convention: SP starts at the top of the stack.
        self.prf.write(self.rat.committed[13], layout.stack_top)

    # ------------------------------------------------------------------
    # access tracing (fault pruning)
    # ------------------------------------------------------------------

    def _install_trace_listeners(self, trace):
        # The PRF holds the live values (execute-at-execute), so its
        # read/write stream *is* the lifetime of every injectable
        # regfile bit.  The flag file is not an injection target and
        # stays untraced.
        trace.register("regfile", 32)

        def prf_event(index, write):
            if self._trace_pause == 0:
                trace.record("regfile", index, self.core.cycle, write)

        self.prf.listener = prf_event

    def _remove_trace_listeners(self):
        self.prf.listener = None

    # ------------------------------------------------------------------
    # architectural visibility (tests, syscall-level comparison)
    # ------------------------------------------------------------------

    def arch_state(self):
        """Committed architectural state (registers r0-r14 + flags)."""
        regs = [self.rat.committed_value(i) for i in range(NUM_ARCH - 1)]
        flags = self.flag_file.read(self.flag_rat.committed[0])
        return {"regs": regs, "flags": flags,
                "pc": self.core.committed_next_pc}

    # ------------------------------------------------------------------
    # checkpoint hooks
    # ------------------------------------------------------------------

    def _restart_pc(self):
        return self.core.committed_next_pc

    def _capture_state(self):
        state = self.arch_state()
        return {
            "seq": self.core.seq,
            "regs": list(state["regs"]),
            "flags": state["flags"],
            "dcache": self.dcache.snapshot(),
            "icache": self.icache.snapshot(),
            "predictor": self.predictor.snapshot(),
        }

    def _restore_state(self, cp):
        self.dcache.restore(cp["dcache"])
        self.icache.restore(cp["icache"])
        self.predictor.restore(cp["predictor"])
        for i, value in enumerate(cp["regs"]):
            self.rat.set_committed_value(i, value)
        self.flag_file.write(self.flag_rat.committed[0], cp["flags"])
        self.core.seq = cp["seq"]

    def _set_restart_point(self, pc, cycle):
        self.core.committed_next_pc = pc
        self.core.last_commit_cycle = cycle

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------

    def _resolve_special(self, structure):
        if structure == "regfile":
            return self.prf, None
        return None
