"""Microarchitectural configuration (Table I of the paper)."""


class CortexA9Config:
    """The paper's Table I configuration, plus the timing knobs that gem5
    exposes but the table leaves implicit.

    Table I values::

        ISA / Core                    ARMv7 / Out-of-order
        Data cache                    32KB 4-way
        Instruction cache             32KB 4-way
        Physical Register File        56 registers
        Instruction queue             32
        Reorder buffer                40
        Fetch/Execute/Writeback width 2/4/4
    """

    def __init__(self, **overrides):
        # Table I attributes.
        self.isa = "ARMv7"
        self.core_type = "Out-of-order"
        self.dcache_size = 32 * 1024
        self.dcache_ways = 4
        self.icache_size = 32 * 1024
        self.icache_ways = 4
        self.phys_regs = 56
        self.iq_entries = 32
        self.rob_entries = 40
        self.fetch_width = 2
        self.execute_width = 4
        self.writeback_width = 4
        # Implicit knobs (gem5-style defaults for an A9-class core).
        self.commit_width = 4
        self.decode_buffer = 8
        self.flag_regs = 16
        self.line_size = 32
        self.alu_units = 2
        self.mul_units = 1
        self.mem_units = 1
        self.alu_latency = 1
        self.mul_latency = 4
        self.load_hit_latency = 4
        self.store_latency = 1
        self.miss_latency = 40
        self.mispredict_penalty = 4
        self.predictor_entries = 1024
        self.ras_entries = 8
        for key, value in overrides.items():
            if not hasattr(self, key):
                raise TypeError(f"unknown config attribute {key!r}")
            setattr(self, key, value)

    def table_rows(self):
        """Rows of the paper's Table I, in order."""
        return [
            ("ISA / Core", f"{self.isa} / {self.core_type}"),
            ("Data cache", f"{self.dcache_size // 1024}KB "
                           f"{self.dcache_ways}-way"),
            ("Instruction cache", f"{self.icache_size // 1024}KB "
                                  f"{self.icache_ways}-way"),
            ("Physical Register File", f"{self.phys_regs} registers"),
            ("Instruction queue", str(self.iq_entries)),
            ("Reorder buffer", str(self.rob_entries)),
            ("Fetch/Execute/Writeback width",
             f"{self.fetch_width}/{self.execute_width}"
             f"/{self.writeback_width}"),
        ]

    def __repr__(self):
        return (
            f"CortexA9Config(prf={self.phys_regs}, iq={self.iq_entries},"
            f" rob={self.rob_entries}, widths={self.fetch_width}/"
            f"{self.execute_width}/{self.writeback_width})"
        )
