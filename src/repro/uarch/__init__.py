"""Microarchitecture-level model of the Cortex-A9-class core.

This package is the paper's "GeFIN on gem5" substrate: a cycle-level,
out-of-order, rename-based core model whose major storage structures (the
56-entry physical register file and the L1 caches) hold live values, so
injected bit-flips propagate exactly as they would through gem5's arrays.
"""

from repro.uarch.config import CortexA9Config
from repro.uarch.simulator import MicroArchSim, RunStatus

__all__ = ["CortexA9Config", "MicroArchSim", "RunStatus"]
