#!/usr/bin/env python3
"""Collect benchmark artifacts into a machine-readable perf trajectory.

Reads the rendered text artifacts under ``benchmarks/results/*.txt``
(written by ``make bench`` / ``make test``) and distills their headline
numbers into one JSON file::

    python tools/bench_summary.py [--out BENCH_4.json]

Schema: ``{benchmark name: {metric: value}}`` -- benchmark names are
the artifact basenames, metrics are flat numeric values (counts,
ratios, percentages).  Keys are sorted and the output carries no
timestamps, so regenerating from unchanged artifacts is diff-free.
The file is the PR-over-PR perf baseline future sessions compare
against (``make bench-json``; uploaded as a CI artifact).

Only artifacts present on disk contribute; unknown files are listed
with an empty metric set rather than skipped, so the trajectory also
records *which* benches ran.
"""

import argparse
import json
import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_DIR = REPO_ROOT / "benchmarks" / "results"
DEFAULT_OUT = REPO_ROOT / "BENCH_4.json"

_FLOAT = r"([0-9]+(?:\.[0-9]+)?)"


def _chart_series_means(text):
    """Mean per-series value of a grouped bar chart artifact.

    Chart lines look like ``  GeFIN            9.4% ####``; groups are
    introduced by ``workload:`` header lines.
    """
    series = {}
    for match in re.finditer(rf"^  (\S[^\n]*?)\s+{_FLOAT}%", text,
                             re.MULTILINE):
        series.setdefault(match.group(1).strip(), []).append(
            float(match.group(2)))
    return {
        f"{name} mean unsafeness %": round(sum(vals) / len(vals), 3)
        for name, vals in series.items() if vals
    }


def _search_metrics(text, patterns):
    """Apply ``{metric: regex}`` over ``text``; keep numeric group 1."""
    out = {}
    for metric, pattern in patterns.items():
        match = re.search(pattern, text)
        if match:
            out[metric] = float(match.group(1))
    return out


def parse_prune_speedup(text):
    out = _search_metrics(text, {
        "samples": rf"samples={_FLOAT}",
        "simulated run reduction x":
            rf"{_FLOAT}x fewer \(deterministic\)",
    })
    match = re.search(
        rf"combined: {_FLOAT} -> {_FLOAT} simulated runs", text)
    if match:
        out["simulated runs off"] = float(match.group(1))
        out["simulated runs dead"] = float(match.group(2))
    for series in ("GeFIN", "RTL"):
        match = re.search(
            rf"{series}\s+prune=dead:\s+{_FLOAT} simulated"
            rf" runs of {_FLOAT} \({_FLOAT} pruned, {_FLOAT}x fewer\)",
            text)
        if match:
            out[f"{series} pruned"] = float(match.group(3))
            out[f"{series} reduction x"] = float(match.group(4))
    return out


def parse_static_prune(text):
    out = _search_metrics(text, {
        "samples": rf"samples={_FLOAT}",
        "combined static_prune_rate %":
            rf"combined static_prune_rate: {_FLOAT}% \(deterministic\)",
    })
    for series in ("ArchEmu", "RTL"):
        match = re.search(
            rf"{series}\s+prune=static:\s+{_FLOAT} simulated"
            rf" runs of {_FLOAT} \({_FLOAT}"
            rf" pruned, static_prune_rate {_FLOAT}%\)",
            text)
        if match:
            out[f"{series} pruned"] = float(match.group(3))
            out[f"{series} static_prune_rate %"] = float(match.group(4))
    return out


def parse_warmstart_speedup(text):
    return _search_metrics(text, {
        "samples": rf"samples={_FLOAT}",
        "cold faulty-phase cycles":
            rf"cold-start \(jobs=1\):\s+{_FLOAT} faulty-phase",
        "warm faulty-phase cycles":
            rf"warm-start \(jobs=1\):\s+{_FLOAT} faulty-phase",
        "cycle speedup x": rf"speedup: {_FLOAT}x simulated cycles",
    })


def parse_batch_speedup(text):
    return _search_metrics(text, {
        "samples": rf"samples={_FLOAT}",
        "lanes": rf"lanes={_FLOAT}",
        "scalar faulty-phase cycles":
            rf"scalar \(lanes=1\):\s+{_FLOAT} faulty-phase",
        "batched global stepped cycles":
            rf"batched \(lanes=\d+\):\s+{_FLOAT} global stepped",
        "cycle speedup x": rf"speedup: {_FLOAT}x simulated cycles",
        "peak lane COW bytes":
            rf"peak lane memory: {_FLOAT} COW bytes",
        "peak lane vs dense x":
            rf"dense \(\(lanes\+1\) x ram\) -> {_FLOAT}x",
    })


def parse_decode_cache(text):
    return _search_metrics(text, {"golden-run insts": rf"insts={_FLOAT}"})


def parse_parallel_speedup(text):
    return _search_metrics(text, {
        "samples": rf"samples={_FLOAT}",
        "jobs": rf"jobs={_FLOAT}",
        "modeled speedup x":
            rf"modeled speedup \(cycle-weighted shard schedule\):"
            rf" {_FLOAT}x",
    })


def parse_store_codec(text):
    return _search_metrics(text, {
        "records": rf"records={_FLOAT}",
        "binary bytes/record": rf"binary:\s+{_FLOAT} bytes/record",
        "jsonl bytes/record": rf"jsonl:\s+{_FLOAT} bytes/record",
        "size ratio x": rf"size ratio: {_FLOAT}x smaller",
        "mmap tally peak-alloc reduction x":
            rf"peak-alloc ratio: {_FLOAT}x less",
    })


def parse_table2(text):
    out = {}
    match = re.search(rf"Average\s*\|[^|]*\|[^|]*\|\s*{_FLOAT}", text)
    if match:
        out["average throughput ratio"] = float(match.group(1))
    return out


#: Artifact basename -> extractor over the file's text.
PARSERS = {
    "batch_speedup.txt": parse_batch_speedup,
    "batch_rtl_speedup.txt": parse_batch_speedup,
    "prune_speedup.txt": parse_prune_speedup,
    "static_prune.txt": parse_static_prune,
    "warmstart_speedup.txt": parse_warmstart_speedup,
    "decode_cache.txt": parse_decode_cache,
    "parallel_speedup.txt": parse_parallel_speedup,
    "store_codec.txt": parse_store_codec,
    "table2.txt": parse_table2,
    "table2_arch_tier.txt": parse_table2,
    "fig1_regfile.txt": _chart_series_means,
    "fig2_l1d_pinout.txt": _chart_series_means,
    "fig3_l1d_avf.txt": _chart_series_means,
}


def collect(results_dir=RESULTS_DIR):
    summary = {}
    for path in sorted(results_dir.glob("*.txt")):
        text = path.read_text()
        parser = PARSERS.get(path.name, lambda _t: {})
        summary[path.stem] = dict(sorted(parser(text).items()))
    return summary


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default {DEFAULT_OUT})")
    parser.add_argument("--results", type=pathlib.Path,
                        default=RESULTS_DIR,
                        help="artifact directory to scan")
    args = parser.parse_args(argv)
    if not args.results.is_dir():
        print(f"bench_summary: no artifact directory at {args.results} "
              f"-- run `make bench` first", file=sys.stderr)
        return 1
    summary = collect(args.results)
    args.out.write_text(json.dumps(summary, indent=2, sort_keys=True)
                        + "\n")
    metrics = sum(len(v) for v in summary.values())
    print(f"bench_summary: {len(summary)} benchmarks, {metrics} metrics"
          f" -> {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
