#!/usr/bin/env python3
"""Assert a store root holds at least N quarantined incidents.

Usage: python tools/assert_store_incidents.py ROOT MIN_TOTAL

``make bench-smoke``'s chaos leg uses this to prove that the
``REPRO_CHAOS`` run really completed *degraded* -- at least one fault
was quarantined into an ``incidents.jsonl`` sidecar -- rather than the
chaos silently not firing (which would make the subsequent
classification diff vacuous).

Exit status 0 when the incident total across every store under ROOT
is >= MIN_TOTAL; 1 otherwise.
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "src"))

from repro.injection.store import CampaignStore  # noqa: E402


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    root, minimum = pathlib.Path(argv[1]), int(argv[2])
    total = 0
    for path in sorted(p for p in root.iterdir() if p.is_dir()):
        count = CampaignStore(path).incident_count()
        total += count
        print(f"{path}: {count} incident(s)")
    print(f"total: {total} (required >= {minimum})")
    return 0 if total >= minimum else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
