#!/usr/bin/env python3
"""Fail when documentation references files that do not exist.

Usage: python tools/docs_check.py README.md DESIGN.md [...]

Two kinds of references are checked, both resolved relative to the repo
root (the parent of this script's directory):

* markdown links whose target is a relative path: ``[text](DESIGN.md)``
  (URLs and pure ``#anchor`` links are ignored; a ``path#anchor``
  target is checked for the path part);
* backticked path-looking tokens: ``src/repro/cli.py``,
  ``benchmarks/results/`` -- tokens containing a ``/`` or ending in
  ``.md`` whose first segment exists as a repo directory or that look
  like plain repo files.  Tokens with glob/placeholder characters or
  spaces are skipped.

Exit status 1 lists every dangling reference with file and line.
"""

import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
BACKTICK = re.compile(r"`([^`\n]+)`")
#: Anything with these characters is code or a placeholder, not a path.
NOT_A_PATH = re.compile(r"[*?<>|{}$=\\ ]|\.\.\.")


def is_url(target):
    return re.match(r"^[a-z][a-z0-9+.-]*:", target) is not None


def candidate_paths(text, line):
    """Yield (reference, line) pairs worth checking in one line."""
    for match in MD_LINK.finditer(text):
        target = match.group(1).split("#", 1)[0]
        if target and not is_url(target):
            yield target, line
    for match in BACKTICK.finditer(text):
        token = match.group(1).strip()
        if NOT_A_PATH.search(token) or is_url(token):
            continue
        looks_like_path = "/" in token or token.endswith(".md")
        if not looks_like_path:
            continue
        # Only treat it as a repo path when the first segment is a real
        # top-level entry -- `repro.injection.executor` or an example
        # shell line should not trip the check.
        first = token.split("/", 1)[0]
        if not (REPO_ROOT / first).exists() and "/" in token:
            continue
        yield token, line


def check_file(doc_path):
    missing = []
    for lineno, text in enumerate(
            doc_path.read_text().splitlines(), start=1):
        for ref, _ in candidate_paths(text, lineno):
            target = (REPO_ROOT / ref).resolve()
            if not target.exists():
                missing.append((doc_path.name, lineno, ref))
    return missing


def main(argv):
    if not argv:
        print(__doc__)
        return 2
    missing = []
    for name in argv:
        doc = REPO_ROOT / name
        if not doc.exists():
            missing.append((name, 0, "(document itself is missing)"))
            continue
        missing.extend(check_file(doc))
    if missing:
        print("docs-check: dangling references:")
        for doc, lineno, ref in missing:
            print(f"  {doc}:{lineno}: {ref}")
        return 1
    print(f"docs-check: OK ({', '.join(argv)})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
