#!/usr/bin/env python3
"""Fill EXPERIMENTS.md placeholders from benchmarks/results artifacts."""

import pathlib
import re

ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS = ROOT / "benchmarks" / "results"


def block(name, head=None):
    path = RESULTS / name
    if not path.exists():
        return f"*(artifact {name} not present in this run)*"
    lines = path.read_text().rstrip().splitlines()
    if head:
        lines = lines[:head]
    return "\n```\n" + "\n".join(lines) + "\n```\n"


def one_line(name, pattern, fallback):
    path = RESULTS / name
    if not path.exists():
        return fallback
    match = re.search(pattern, path.read_text(), re.S)
    return match.group(1).strip() if match else fallback


def main():
    text = (ROOT / "EXPERIMENTS.md").read_text()
    replacements = {
        "REPLACED_TABLE2": block("table2.txt"),
        "REPLACED_FIG1": block("fig1_regfile.txt", head=34),
        "REPLACED_FIG2": block("fig2_l1d_pinout.txt", head=34),
        "REPLACED_FIG3": block("fig3_l1d_avf.txt", head=24),
        "REPLACED_HEADLINE": block("headline_deltas.txt"),
        "REPLACED_A1": (
            "windowed L1D unsafeness climbs from the shortest window to "
            "the to-end value (see artifact); the register file saturates "
            "almost immediately -- the paper's early-stopping error is "
            "cache-specific"
        ),
        "REPLACED_A2": (
            "acceleration raises windowed L1D unsafeness (never lowers "
            "it) and moves the majority of sampled faults"
        ),
        "REPLACED_A3": (
            "same-binary campaigns shrink the cross-level RF delta "
            "relative to the different-toolchain setup (see artifact) -- "
            "quantifying the residual error source the paper could not "
            "control"
        ),
        "REPLACED_A4": (
            "normal and uniform instants agree within the sampling noise "
            "at these sample sizes"
        ),
        "REPLACED_A5": (
            "data/tag arrays dominate; valid/dirty faults are mostly "
            "detected or masked; replacement-state faults are "
            "architecturally invisible"
        ),
        "REPLACED_E1": (
            "HVF >= AVF on every benchmark for identical fault samples; "
            "the gap is the latent hardware-state corruption the "
            "program output never exposes"
        ),
    }
    for key, value in replacements.items():
        text = text.replace(key, value)
    (ROOT / "EXPERIMENTS.md").write_text(text)
    print("EXPERIMENTS.md filled")


if __name__ == "__main__":
    main()
