#!/usr/bin/env python3
"""Diff the per-fault classification sequences of two campaign stores.

Usage: python tools/diff_store_classes.py STORE_A STORE_B

Reads both stores' ``records.jsonl`` and compares, index by index, the
fault identity (structure, bit, original cycle) and the classification
class.  Accounting fields -- detail, sim_cycles, wall clock, the
``pruned`` tag -- are deliberately ignored: this is exactly the
equivalence ``--prune dead`` promises against ``--prune off``, and the
CI smoke uses this tool to hold it on every push.

Exit status 0 when the sequences match; 1 with a per-index report
otherwise.
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "src"))

from repro.injection.store import CampaignStore  # noqa: E402


def classification_sequence(path):
    records = CampaignStore(path).records()
    return {
        index: (r.fault.structure, r.fault.bit, r.fault.original_cycle,
                r.fclass.value)
        for index, r in records.items()
    }


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    a_path, b_path = argv[1], argv[2]
    a = classification_sequence(a_path)
    b = classification_sequence(b_path)
    problems = []
    for index in sorted(set(a) | set(b)):
        left, right = a.get(index), b.get(index)
        if left != right:
            problems.append(f"  fault #{index}: {a_path}={left}  "
                            f"{b_path}={right}")
    if problems:
        print(f"classification sequences differ "
              f"({len(problems)} of {max(len(a), len(b))} faults):")
        print("\n".join(problems))
        return 1
    print(f"classification sequences identical: {len(a)} faults"
          f" ({a_path} vs {b_path})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
