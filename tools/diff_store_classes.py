#!/usr/bin/env python3
"""Diff the per-fault classification sequences of two campaign stores.

Usage: python tools/diff_store_classes.py STORE_A STORE_B

Reads both stores' record streams (bitpacked ``records.bin`` or JSONL,
in any combination) and compares, index by index, the fault identity
(structure, bit, original cycle) and the classification class.
Accounting fields -- detail, sim_cycles, wall clock, the ``pruned``
tag -- are deliberately ignored: this is exactly the equivalence
``--prune dead`` promises against ``--prune off``, and the CI smoke
uses this tool to hold it on every push.

The comparison is columnar (``CampaignStore.sequence_arrays``): binary
stores diff as numpy array equality straight off the mmap, so two
million-fault stores compare without materializing records; the
per-index report is built only on mismatch.

Quarantined faults (the ``incidents.jsonl`` sidecar of a degraded
campaign) are masked out of *both* sides symmetrically: a chaos run
that quarantined fault #7 still compares clean against an undisturbed
run, because every fault the two stores both classified must agree.
The masked count is reported so a diff can't silently pass on an
empty intersection.

Exit status 0 when the sequences match; 1 with a per-index report
otherwise.
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "src"))

import numpy as np  # noqa: E402

from repro.injection.store import CampaignStore  # noqa: E402

_COLUMNS = ("index", "structure", "bit", "original_cycle", "fclass")


def sequence_columns(path):
    store = CampaignStore(path)
    return store.sequence_arrays(), frozenset(store.incidents())


def _drop_indices(columns, quarantined):
    """Mask the union of both stores' quarantined fault indices out of
    one store's columnar view."""
    if not quarantined:
        return columns
    keep = ~np.isin(columns["index"], sorted(quarantined))
    return {name: values[keep] for name, values in columns.items()}


def _as_map(columns):
    """index -> (structure, bit, original_cycle, fclass), for the
    mismatch report only."""
    return {
        int(i): (s, int(bit), int(oc), f)
        for i, s, bit, oc, f in zip(
            columns["index"], columns["structure"], columns["bit"],
            columns["original_cycle"], columns["fclass"])
    }


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    a_path, b_path = argv[1], argv[2]
    a, a_quarantined = sequence_columns(a_path)
    b, b_quarantined = sequence_columns(b_path)
    quarantined = a_quarantined | b_quarantined
    a = _drop_indices(a, quarantined)
    b = _drop_indices(b, quarantined)
    ignored = (f", {len(quarantined)} quarantined fault(s) ignored"
               if quarantined else "")
    if (len(a["index"]) == len(b["index"])
            and all(np.array_equal(a[c], b[c]) for c in _COLUMNS)):
        print(f"classification sequences identical: "
              f"{len(a['index'])} faults ({a_path} vs {b_path})"
              f"{ignored}")
        return 0
    a_map, b_map = _as_map(a), _as_map(b)
    problems = []
    for index in sorted(set(a_map) | set(b_map)):
        left, right = a_map.get(index), b_map.get(index)
        if left != right:
            problems.append(f"  fault #{index}: {a_path}={left}  "
                            f"{b_path}={right}")
    print(f"classification sequences differ "
          f"({len(problems)} of {max(len(a_map), len(b_map))} faults):")
    print("\n".join(problems))
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
