#!/usr/bin/env python3
"""Dump an RT-level waveform (VCD) and use signal-level safeness.

The paper's RTL flow observes *design signals*; this example shows the
two artifacts our RT-level model produces for that purpose:

* a VCD change-log of every pipeline flop group (viewable in GTKWave);
* the rolling signal CRC -- the strict, signal-level safeness criterion:
  two runs are signal-identical iff their CRCs match.

Run:  python examples/waveform_dump.py [output.vcd]
"""

import sys

from repro.isa import Toolchain
from repro.rtl import RTLConfig, RTLSim
from repro.workloads import build

program = build("stringsearch", Toolchain("armcc"))

golden = RTLSim(program, RTLConfig())
golden.run(stop_cycle=3000)
print(f"golden: cycle={golden.cycle} signal_crc={golden.signal_crc:#010x}")
print(f"        {len(golden.trace.changes)} signal changes recorded, "
      f"rf toggles={golden.trace.toggles.get('rf', 0)}")

# Same run with one flipped register-file bit: the waveform diverges.
faulty = RTLSim(program, RTLConfig())
faulty.run(stop_cycle=1000)
faulty.inject("regfile", 4 * 32 + 17)   # r4, bit 17
faulty.run(stop_cycle=3000)
print(f"faulty: cycle={faulty.cycle} signal_crc={faulty.signal_crc:#010x}")
verdict = "UNSAFE" if faulty.signal_crc != golden.signal_crc else "safe"
print(f"signal-level safeness verdict: {verdict}")

path = sys.argv[1] if len(sys.argv) > 1 else "stringsearch.vcd"
vcd = golden.export_vcd("stringsearch-golden")
with open(path, "w") as handle:
    handle.write(vcd)
print(f"wrote {len(vcd) // 1024} KB waveform to {path}")
