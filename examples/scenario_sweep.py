#!/usr/bin/env python3
"""Scenario API tour: declare a sweep, run it, query the ResultSet.

The same experiment as a TOML file (runnable with
``repro-study run sweep.toml``) appears at the bottom.

Run:  python examples/scenario_sweep.py
"""

from repro import ScenarioRunner, ScenarioSpec

# ----------------------------------------------------------------------
# 1. Declare the experiment: a 2-level x 2-prune-mode sweep over one
#    short workload.  The mapping is exactly what the TOML file parses
#    to; unknown keys or bad names raise ScenarioError naming the field.
# ----------------------------------------------------------------------

spec = ScenarioSpec.from_mapping({
    "scenario": {"name": "prune-sweep",
                 "title": "dead-pruning exactness, arch vs uarch"},
    "targets": {
        "levels": ["arch", "uarch"],
        "workloads": ["stringsearch"],
        "structures": ["regfile"],
        "modes": ["pinout"],
    },
    "faults": {"samples": 20, "seed": 2017},
    "execution": {"jobs": 2},
    "sweep": {"prune": ["off", "dead"]},
})
print(f"# {spec.describe()}")
for cell in spec.cells():
    print(f"#   cell {cell.index}: {cell.label()}")

# ----------------------------------------------------------------------
# 2. Run the grid.  Campaigns of one (level, workload) share the golden
#    capture where legal; results come back as a queryable ResultSet.
# ----------------------------------------------------------------------

results = ScenarioRunner(spec).run()
print(results.table(title="All cells"))

# ----------------------------------------------------------------------
# 3. Query: filters compose, group_by aggregates, and the dead-pruning
#    exactness contract is directly checkable per level.
# ----------------------------------------------------------------------

for (level,), subset in results.group_by("level").items():
    off = subset.where(prune="off").one()
    dead = subset.where(prune="dead").one()
    agree = [r.fclass for r in off.records] == \
        [r.fclass for r in dead.records]
    print(f"{level}: prune=dead skipped {dead.pruned_count} of "
          f"{dead.n} simulations, classes identical to off: {agree}")

print()
print(results.where(level="uarch").speedup_table(title="uarch cells"))

# ----------------------------------------------------------------------
# The equivalent scenario file:
#
#   [scenario]
#   name = "prune-sweep"
#
#   [targets]
#   levels = ["arch", "uarch"]
#   workloads = ["stringsearch"]
#   structures = ["regfile"]
#   modes = ["pinout"]
#
#   [faults]
#   samples = 20
#
#   [execution]
#   jobs = 2
#
#   [sweep]
#   prune = ["off", "dead"]
#
# and then:  repro-study run sweep.toml --csv cells.csv
# ----------------------------------------------------------------------
