#!/usr/bin/env python3
"""Quickstart: assemble a program, run it at both abstraction levels,
inject a few faults, and compare vulnerability estimates.

Run:  python examples/quickstart.py
"""

from repro.analysis.report import campaign_table
from repro.injection import GeFIN, SafetyVerifier
from repro.isa import Interpreter, Toolchain, assemble
from repro.rtl import RTLConfig, RTLSim
from repro.uarch import MicroArchSim

# ----------------------------------------------------------------------
# 1. Write and assemble an ARMlet program.
# ----------------------------------------------------------------------

SOURCE = """
    .text
_start:
    movw r4, #0          ; i
    movw r5, #0          ; sum
loop:
    add  r5, r5, r4
    add  r4, r4, #1
    cmp  r4, #100
    blt  loop
    mov  r0, r5
    svc  #2              ; print_uint(sum)
    movw r0, #10
    svc  #1              ; putc('\\n')
    movw r0, #0
    svc  #0              ; exit(0)
"""

program = assemble(SOURCE, name="sum100", toolchain=Toolchain("gnu"))
print(f"assembled {program!r}")

# ----------------------------------------------------------------------
# 2. Run it on all three models: architectural reference, the
#    microarchitecture-level (gem5/GeFIN-class) model, and the RT-level
#    (NCSIM-class) model.
# ----------------------------------------------------------------------

reference = Interpreter(program).run()
print(f"reference   : {reference.output!r} in {reference.inst_count} insts")

uarch = MicroArchSim(program)
uarch.run()
print(f"uarch model : {uarch.output!r} in {uarch.cycle} cycles "
      f"(IPC {uarch.stats()['ipc']:.2f})")

rtl = RTLSim(program, RTLConfig(trace_signals=False))
rtl.run()
print(f"rtl model   : {rtl.output!r} in {rtl.cycle} cycles "
      f"(IPC {rtl.stats()['ipc']:.2f})")

assert uarch.output == rtl.output == reference.output

# ----------------------------------------------------------------------
# 3. Statistical fault injection on a real MiBench-like workload, at
#    both levels, with the paper's setup (pinout observation point,
#    post-injection window, normal injection-time distribution).
# ----------------------------------------------------------------------

SAMPLES = 40
print(f"\nSFI: {SAMPLES} register-file faults per level on 'sha'...")
gefin_result = GeFIN("sha").campaign("regfile", mode="pinout",
                                     samples=SAMPLES)
rtl_result = SafetyVerifier("sha").campaign("regfile", mode="pinout",
                                            samples=SAMPLES)
print(campaign_table([gefin_result, rtl_result]))

delta_pp = abs(gefin_result.unsafeness - rtl_result.unsafeness) * 100
print(f"\ncross-level delta: {delta_pp:.1f} percentile units "
      f"(paper reports ~0.7 pp average for the register file)")
print(f"Leveugle-exact sample size for 2% error, 99% confidence: "
      f"{gefin_result.recommended_samples()}")

# Next step: the declarative scenario API runs whole campaign grids
# (levels x workloads x structures x modes, plus knob sweeps) from one
# spec -- see examples/scenario_sweep.py and `repro-study run --help`.
