#!/usr/bin/env python3
"""Early microarchitecture-level reliability exploration with GeFIN.

Scenario: before RTL exists, an architect wants per-benchmark AVF
estimates for the register file across the whole workload suite, plus a
what-if on cache capacity -- the "early and accurate reliability
assessment" use case the paper's introduction motivates.  This is only
possible at the microarchitecture level: the equivalent RTL campaigns
would take two orders of magnitude longer (Table II).

Run:  python examples/early_design_exploration.py
(set REPRO_SFI_SAMPLES to trade accuracy for time; default 25 here)
"""

import os
import time

from repro.analysis.report import render_table
from repro.injection import ArchEmu, GeFIN
from repro.uarch.config import CortexA9Config
from repro.workloads import WORKLOAD_NAMES

SAMPLES = int(os.environ.get("REPRO_SFI_SAMPLES", "25"))

# ----------------------------------------------------------------------
# 1. Register-file AVF across the full suite (software observation
#    point, run to program end -- the metric an architect acts on).
# ----------------------------------------------------------------------

rows = []
for workload in WORKLOAD_NAMES:
    result = GeFIN(workload).campaign("regfile", mode="avf",
                                      samples=SAMPLES)
    low, high = result.confidence_interval()
    rows.append((
        workload,
        f"{100 * result.unsafeness:.1f}%",
        f"[{100 * low:.0f}, {100 * high:.0f}]%",
        f"{result.golden_cycles / 1000:.0f}k",
        f"{result.seconds_per_run:.2f}s",
    ))
print(render_table(
    ("benchmark", "RF AVF", "95% CI", "cycles", "s/run"),
    rows,
    title=f"Register-file AVF across MiBench subset ({SAMPLES} faults "
          f"each)",
))

# ----------------------------------------------------------------------
# 2. What-if: does doubling the (scaled) L1D change its AVF?  A question
#    only a microarchitectural model can answer pre-RTL.
# ----------------------------------------------------------------------

what_if = []
for kilobytes in (1, 2, 4):
    config = CortexA9Config(dcache_size=kilobytes * 1024,
                            icache_size=1024)
    front = GeFIN("qsort", core_config=config)
    result = front.campaign("l1d.data", mode="avf", samples=SAMPLES)
    what_if.append((
        f"{kilobytes} KB",
        f"{100 * result.unsafeness:.1f}%",
        str(result.population),
    ))
print()
print(render_table(
    ("L1D capacity", "L1D AVF", "fault population"),
    what_if,
    title="What-if: qsort L1D AVF vs capacity (larger cache = more "
          "dead bits)",
))
print("\nNote: per-bit AVF falls as capacity grows, while the *chip* "
      "failure rate (AVF x bit count) changes much less -- the classic "
      "trade-off this methodology quantifies before RTL exists.")

# ----------------------------------------------------------------------
# 3. One tier further down: the architectural emulator (--level arch)
#    screens the same register-file question before even the
#    microarchitectural model exists -- the paper taxonomy's fastest,
#    least-detailed rung.
# ----------------------------------------------------------------------

screen = []
for workload in ("sha", "stringsearch"):
    started = time.perf_counter()
    arch = ArchEmu(workload).campaign("regfile", mode="avf",
                                      samples=SAMPLES)
    arch_seconds = time.perf_counter() - started
    screen.append((
        workload,
        f"{100 * arch.unsafeness:.1f}%",
        f"{arch_seconds:.1f}s",
    ))
print()
print(render_table(
    ("benchmark", "RF AVF (arch tier)", "campaign wall clock"),
    screen,
    title="Emulator-tier screen: architectural-state-only AVF",
))
print("\nNote: the arch tier only sees faults in *architectural* "
      "registers -- no PRF, no timing -- so it bounds what software-"
      "level injection can observe, at a fraction of the cost.")
