#!/usr/bin/env python3
"""Industrial RT-level safety assessment (the Safety-Verifier workflow).

Scenario: a functional-safety team must report the *safeness* of the CPU's
register file and L1 data cache for a target workload -- the paper's
SS III-A flow.  This example shows the three practices that flow relies on:

1. golden-vs-faulty pinout comparison with a bounded post-injection
   window (RTL simulation is too slow for run-to-end campaigns);
2. the inject-near-consumption optimisation for cache faults (SS IV-B);
3. statistically sized campaigns (Leveugle, DATE 2009) with explicit
   confidence reporting for whatever sample count the budget allows.

Run:  python examples/safety_assessment.py
"""

import os

from repro.analysis.report import campaign_table, render_table
from repro.injection import SafetyVerifier
from repro.injection.sampling import leveugle_sample_size

WORKLOAD = "caes"
SAMPLES = int(os.environ.get("REPRO_SFI_SAMPLES", "40"))

verifier = SafetyVerifier(WORKLOAD)
print(f"flow: {verifier!r}")

golden = verifier.golden_run()
print(f"golden run: {golden.cycle} cycles, "
      f"{golden.stats()['l1d_writebacks']} L1D write-backs on the pinout")

# Statistical sizing: what would a certified campaign need?
population = golden.fault_targets()["l1d.data"] * golden.cycle
needed = leveugle_sample_size(population, error_margin=0.02,
                              confidence=0.99)
print(f"fault population (bits x cycles): {population:,}")
print(f"Leveugle sample size @ 2% error, 99% confidence: {needed}")
print(f"this demo runs {SAMPLES} faults per campaign "
      f"(set REPRO_SFI_SAMPLES to scale up)\n")

# Campaigns: register file, then L1D with and without the acceleration.
results = [
    verifier.campaign("regfile", mode="pinout", samples=SAMPLES),
    verifier.campaign("l1d.data", mode="pinout", samples=SAMPLES,
                      accelerate=False),
    verifier.campaign("l1d.data", mode="pinout", samples=SAMPLES,
                      accelerate=True),
]
print(campaign_table(results, title=f"Safeness campaigns on {WORKLOAD}"))

plain, accelerated = results[1], results[2]
print(render_table(
    ("L1D campaign", "unsafeness", "moved injections"),
    [
        ("natural injection instants", f"{100 * plain.unsafeness:.1f}%",
         sum(1 for r in plain.records if r.fault.accelerated)),
        ("inject-near-consumption",
         f"{100 * accelerated.unsafeness:.1f}%",
         sum(1 for r in accelerated.records if r.fault.accelerated)),
    ],
    title="\nEffect of the RTL framework optimisation (paper SS IV-B)",
))

safeness = 1.0 - accelerated.unsafeness
low, high = accelerated.confidence_interval()
print(f"\nreported L1D safeness: {100 * safeness:.1f}% "
      f"(95% CI on unsafeness: [{100 * low:.1f}%, {100 * high:.1f}%])")
