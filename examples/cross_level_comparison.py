#!/usr/bin/env python3
"""A miniature of the paper's whole study on two workloads.

Reproduces the experimental design of SS III-IV: equivalent setups at the
two abstraction levels, identical fault model and observation points,
then the cross-level deltas in percentile units and relative terms.

Run:  python examples/cross_level_comparison.py
"""

import os

from repro.analysis.report import render_table
from repro.core.figures import figure1_chart, figure3_chart
from repro.core.study import CrossLevelStudy, StudyConfig

WORKLOADS = ("sha", "stringsearch")
SAMPLES = int(os.environ.get("REPRO_SFI_SAMPLES", "30"))

study = CrossLevelStudy(StudyConfig(workloads=WORKLOADS,
                                    samples=SAMPLES))

print(f"register-file series (Fig. 1 style), {SAMPLES} faults/series...")
fig1 = study.figure1()
print(figure1_chart(fig1))

print(f"\nL1D AVF series (Fig. 3 style)...")
fig3 = study.figure3(workloads=WORKLOADS)
print(figure3_chart(fig3))

headline = study.headline(fig1=fig1, fig3=fig3)
print()
for structure, comparison in headline.items():
    print(render_table(
        ("workload", "GeFIN", "RTL", "delta (pp)", "delta (rel)"),
        comparison.rows(),
        title=f"Cross-level deltas: {structure}",
    ))
    print()

rf = headline["regfile"]
l1d = headline["l1d"]
print(f"paper headline : RF ~0.7pp (~10%), L1D ~3pp (~20%)")
print(f"this run       : RF {rf.mean_percentile_units:.1f}pp "
      f"({100 * rf.mean_relative:.0f}%), "
      f"L1D {l1d.mean_percentile_units:.1f}pp "
      f"({100 * l1d.mean_relative:.0f}%)")
print("(shape, not absolute match, is the reproduction target; "
      "see EXPERIMENTS.md)")
