import pathlib
import re

from setuptools import find_packages, setup


def read_version():
    """Single-source the version from ``repro.__version__`` without
    importing the package (no installed deps at build time)."""
    init = pathlib.Path(__file__).parent / "src" / "repro" / "__init__.py"
    match = re.search(r'^__version__ = "([^"]+)"', init.read_text(),
                      re.MULTILINE)
    if not match:
        raise RuntimeError("cannot find __version__ in src/repro/__init__.py")
    return match.group(1)


setup(
    name="repro-dsn-chatzidimitriou17",
    version=read_version(),
    description=(
        "RT-level vs microarchitecture-level reliability assessment: "
        "a full-system reproduction (DSN-W 2017)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    package_data={"repro.scenario": ["presets/*.toml"]},
    # The scenario layer parses TOML with the stdlib tomllib (3.11+).
    python_requires=">=3.11",
    entry_points={
        "console_scripts": ["repro-study=repro.cli:main"],
    },
)
