from setuptools import find_packages, setup

setup(
    name="repro-dsn-chatzidimitriou17",
    version="0.1.0",
    description=(
        "RT-level vs microarchitecture-level reliability assessment: "
        "a full-system reproduction (DSN-W 2017)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    entry_points={
        "console_scripts": ["repro-study=repro.cli:main"],
    },
)
